module Graph = Qcr_graph.Graph
module Generate = Qcr_graph.Generate
module Paths = Qcr_graph.Paths
module Coloring = Qcr_graph.Coloring
module Matching = Qcr_graph.Matching
module Components = Qcr_graph.Components
module Prng = Qcr_util.Prng

let test_graph_basic () =
  let g = Graph.create 4 in
  Graph.add_edge g 0 1;
  Graph.add_edge g 1 2;
  Alcotest.(check int) "edge count" 2 (Graph.edge_count g);
  Alcotest.(check bool) "has edge" true (Graph.has_edge g 1 0);
  Alcotest.(check bool) "no edge" false (Graph.has_edge g 0 2);
  Alcotest.(check (list int)) "neighbors sorted" [ 0; 2 ] (Graph.neighbors g 1);
  Alcotest.(check int) "degree" 2 (Graph.degree g 1);
  Alcotest.(check (list (pair int int))) "edges" [ (0, 1); (1, 2) ] (Graph.edges g);
  Graph.remove_edge g 0 1;
  Alcotest.(check bool) "removed" false (Graph.has_edge g 0 1);
  Alcotest.(check int) "edge count after removal" 1 (Graph.edge_count g)

let test_graph_rejects_bad_edges () =
  let g = Graph.create 3 in
  Graph.add_edge g 0 1;
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.add_edge: self-loop") (fun () ->
      Graph.add_edge g 1 1);
  Alcotest.check_raises "duplicate" (Invalid_argument "Graph.add_edge: duplicate edge")
    (fun () -> Graph.add_edge g 1 0)

let test_graph_copy_independent () =
  let g = Graph.create 3 in
  Graph.add_edge g 0 1;
  let h = Graph.copy g in
  Graph.remove_edge h 0 1;
  Alcotest.(check bool) "copy independent" true
    (Graph.has_edge g 0 1 && not (Graph.has_edge h 0 1))

let test_complete () =
  let g = Graph.complete 5 in
  Alcotest.(check int) "clique edges" 10 (Graph.edge_count g);
  Alcotest.(check (float 1e-9)) "density 1" 1.0 (Graph.density g)

let test_subgraph () =
  let g = Graph.complete 5 in
  let sub, back = Graph.subgraph_on g [ 1; 3; 4 ] in
  Alcotest.(check int) "sub vertices" 3 (Graph.vertex_count sub);
  Alcotest.(check int) "sub edges" 3 (Graph.edge_count sub);
  Alcotest.(check (array int)) "back map" [| 1; 3; 4 |] back

let test_erdos_renyi_density () =
  let rng = Prng.create 11 in
  let g = Generate.erdos_renyi rng ~n:200 ~density:0.3 in
  let d = Graph.density g in
  Alcotest.(check bool) "density near 0.3" true (abs_float (d -. 0.3) < 0.03)

let test_erdos_renyi_deterministic () =
  let g1 = Generate.erdos_renyi (Prng.create 5) ~n:30 ~density:0.4 in
  let g2 = Generate.erdos_renyi (Prng.create 5) ~n:30 ~density:0.4 in
  Alcotest.(check (list (pair int int))) "same edges" (Graph.edges g1) (Graph.edges g2)

let test_random_regular () =
  let rng = Prng.create 13 in
  let g = Generate.random_regular rng ~n:20 ~degree:4 in
  for v = 0 to 19 do
    Alcotest.(check int) "regular degree" 4 (Graph.degree g v)
  done

let test_regular_with_density () =
  let rng = Prng.create 17 in
  let g = Generate.regular_with_density rng ~n:64 ~density:0.3 in
  let expected_degree = Graph.degree g 0 in
  for v = 1 to 63 do
    Alcotest.(check int) "uniform degree" expected_degree (Graph.degree g v)
  done;
  Alcotest.(check bool) "density in ballpark" true (abs_float (Graph.density g -. 0.3) < 0.05)

let test_path_cycle_star () =
  let p = Generate.path 5 in
  Alcotest.(check int) "path edges" 4 (Graph.edge_count p);
  let c = Generate.cycle 5 in
  Alcotest.(check int) "cycle edges" 5 (Graph.edge_count c);
  let s = Generate.star 5 in
  Alcotest.(check int) "star edges" 4 (Graph.edge_count s);
  Alcotest.(check int) "star center degree" 4 (Graph.degree s 0)

let test_bfs_distances () =
  let g = Generate.path 6 in
  let d = Paths.bfs g 0 in
  Alcotest.(check (array int)) "line distances" [| 0; 1; 2; 3; 4; 5 |] d;
  let dm = Paths.all_pairs g in
  Alcotest.(check int) "all pairs" 5 (Paths.distance dm 0 5);
  Alcotest.(check int) "symmetric" (Paths.distance dm 2 4) (Paths.distance dm 4 2)

let test_shortest_path () =
  let g = Generate.cycle 8 in
  let p = Paths.shortest_path g 0 3 in
  Alcotest.(check int) "path length" 4 (List.length p);
  Alcotest.(check int) "starts at source" 0 (List.hd p);
  (* consecutive hops are edges *)
  let rec check_hops = function
    | a :: b :: rest ->
        Alcotest.(check bool) "hop is edge" true (Graph.has_edge g a b);
        check_hops (b :: rest)
    | _ -> ()
  in
  check_hops p

let test_disconnected_path_raises () =
  let g = Graph.create 4 in
  Graph.add_edge g 0 1;
  Graph.add_edge g 2 3;
  Alcotest.check_raises "not found" Not_found (fun () ->
      ignore (Paths.shortest_path g 0 3))

let test_diameter () =
  Alcotest.(check int) "path diameter" 5 (Paths.diameter (Generate.path 6));
  Alcotest.(check int) "cycle diameter" 3 (Paths.diameter (Generate.cycle 6))

let test_longest_path_heuristic () =
  let g = Generate.path 10 in
  let p = Paths.longest_path_heuristic g in
  Alcotest.(check int) "finds the full line" 10 (List.length p)

let check_coloring_proper g colors =
  Graph.iter_edges
    (fun u v ->
      Alcotest.(check bool) "proper coloring" true (colors.(u) <> colors.(v)))
    g

let test_coloring_small () =
  let g = Graph.complete 4 in
  let colors = Coloring.greedy g in
  check_coloring_proper g colors;
  Alcotest.(check int) "clique needs n colors" 4 (Coloring.count_colors colors)

let prop_coloring_proper =
  QCheck.Test.make ~name:"greedy coloring is proper" ~count:50
    QCheck.(pair (int_range 2 30) (int_bound 1000))
    (fun (n, seed) ->
      let g = Generate.erdos_renyi (Prng.create seed) ~n ~density:0.4 in
      let colors = Coloring.greedy g in
      let ok = ref true in
      Graph.iter_edges (fun u v -> if colors.(u) = colors.(v) then ok := false) g;
      !ok)

let test_largest_class () =
  let g = Generate.star 5 in
  let colors = Coloring.greedy g in
  let cls = Coloring.largest_class colors in
  Alcotest.(check int) "star largest class" 4 (List.length cls)

let prop_matching_valid =
  QCheck.Test.make ~name:"maximum_weight_matching returns a matching" ~count:100
    QCheck.(pair (int_range 2 20) (int_bound 1000))
    (fun (n, seed) ->
      let rng = Prng.create seed in
      let g = Generate.erdos_renyi rng ~n ~density:0.5 in
      let edges =
        List.map
          (fun (u, v) -> { Matching.u; v; weight = Prng.float rng 10.0 })
          (Graph.edges g)
      in
      Matching.is_matching n (Matching.maximum_weight_matching n edges))

let test_matching_prefers_weight () =
  (* triangle with one heavy edge: heavy edge must be chosen *)
  let edges =
    [
      { Matching.u = 0; v = 1; weight = 10.0 };
      { Matching.u = 1; v = 2; weight = 1.0 };
      { Matching.u = 0; v = 2; weight = 1.0 };
    ]
  in
  let m = Matching.maximum_weight_matching 3 edges in
  Alcotest.(check int) "one edge" 1 (List.length m);
  Alcotest.(check (float 1e-9)) "heavy chosen" 10.0 (Matching.matching_weight m)

let test_matching_improvement () =
  (* path a-b-c-d with heavy middle: two light edges beat one heavy *)
  let edges =
    [
      { Matching.u = 0; v = 1; weight = 3.0 };
      { Matching.u = 1; v = 2; weight = 5.0 };
      { Matching.u = 2; v = 3; weight = 3.0 };
    ]
  in
  let m = Matching.maximum_weight_matching 4 edges in
  Alcotest.(check (float 1e-9)) "improved to 6" 6.0 (Matching.matching_weight m)

let test_components () =
  let g = Graph.create 7 in
  Graph.add_edge g 0 1;
  Graph.add_edge g 1 2;
  Graph.add_edge g 4 5;
  Alcotest.(check int) "count" 4 (Components.count g);
  let comps = Components.components g in
  Alcotest.(check int) "component lists" 4 (List.length comps);
  let nontrivial = Components.nontrivial_components g in
  Alcotest.(check int) "nontrivial" 2 (List.length nontrivial);
  Alcotest.(check (list (list int))) "members" [ [ 0; 1; 2 ]; [ 4; 5 ] ] nontrivial

let test_is_connected () =
  Alcotest.(check bool) "path connected" true (Graph.is_connected (Generate.path 5));
  let g = Graph.create 3 in
  Graph.add_edge g 0 1;
  Alcotest.(check bool) "isolated vertex disconnects" false (Graph.is_connected g)


(* Satellite regression: repeated add/remove keeps the cached degree
   array and edge count exactly in sync with the adjacency rows. *)
let test_add_remove_degree_exact () =
  let n = 10 in
  let g = Graph.create n in
  let rng = Prng.create 77 in
  let present = Hashtbl.create 32 in
  for _ = 1 to 400 do
    let u = Prng.int rng n and v = Prng.int rng n in
    if u <> v then begin
      let key = (min u v, max u v) in
      if Hashtbl.mem present key then begin
        Graph.remove_edge g u v;
        Hashtbl.remove present key
      end
      else begin
        Graph.add_edge g u v;
        Hashtbl.replace present key ()
      end;
      for w = 0 to n - 1 do
        let nbrs = Graph.neighbors g w in
        Alcotest.(check int)
          (Printf.sprintf "degree of %d" w)
          (List.length nbrs) (Graph.degree g w);
        Alcotest.(check (list int))
          (Printf.sprintf "neighbors of %d sorted" w)
          (List.sort_uniq compare nbrs) nbrs
      done;
      Alcotest.(check int) "edge count" (Hashtbl.length present) (Graph.edge_count g)
    end
  done;
  (* removing an absent edge is a no-op, including on degrees *)
  Graph.remove_edge g 0 1;
  let deg_before = List.init n (Graph.degree g) in
  Graph.remove_edge g 0 1;
  Graph.remove_edge g 0 1;
  let _ = Graph.has_edge g 0 1 in
  Graph.remove_edge g 2 2;
  Alcotest.(check (list int)) "no-op removes" deg_before
    (List.init n (Graph.degree g))

(* Satellite property: the CSR snapshot is permutation-identical to the
   mutable adjacency view — same vertex/edge counts, same degrees, and
   the same (increasing) neighbor order for neighbors/iter/fold — even
   after a mix of removals. *)
let prop_csr_matches_graph =
  QCheck.Test.make ~name:"CSR snapshot identical to adjacency view" ~count:50
    QCheck.(pair (int_bound 10_000) (int_range 1 40))
    (fun (seed, n) ->
      let rng = Prng.create seed in
      let g = Generate.erdos_renyi rng ~n ~density:0.3 in
      List.iteri
        (fun i (u, v) -> if i mod 3 = 0 then Graph.remove_edge g u v)
        (Graph.edges g);
      let c = Graph.csr g in
      Graph.Csr.vertex_count c = n
      && Graph.Csr.edge_count c = Graph.edge_count g
      && List.for_all
           (fun v ->
             let nbrs = Graph.neighbors g v in
             let iter_order =
               let acc = ref [] in
               Graph.Csr.iter_neighbors c v (fun w -> acc := w :: !acc);
               List.rev !acc
             in
             Graph.Csr.degree c v = Graph.degree g v
             && Graph.Csr.neighbors c v = nbrs
             && iter_order = nbrs
             && Graph.Csr.fold_neighbors c v (fun a w -> w :: a) [] = List.rev nbrs
             && Graph.fold_neighbors g v (fun a w -> w :: a) [] = List.rev nbrs)
           (List.init n Fun.id))

let suite =
  [
    Alcotest.test_case "graph basic" `Quick test_graph_basic;
    Alcotest.test_case "graph rejects bad edges" `Quick test_graph_rejects_bad_edges;
    Alcotest.test_case "graph copy" `Quick test_graph_copy_independent;
    Alcotest.test_case "complete graph" `Quick test_complete;
    Alcotest.test_case "subgraph" `Quick test_subgraph;
    Alcotest.test_case "erdos-renyi density" `Quick test_erdos_renyi_density;
    Alcotest.test_case "erdos-renyi deterministic" `Quick test_erdos_renyi_deterministic;
    Alcotest.test_case "random regular" `Quick test_random_regular;
    Alcotest.test_case "regular with density" `Quick test_regular_with_density;
    Alcotest.test_case "path/cycle/star" `Quick test_path_cycle_star;
    Alcotest.test_case "bfs distances" `Quick test_bfs_distances;
    Alcotest.test_case "shortest path" `Quick test_shortest_path;
    Alcotest.test_case "disconnected raises" `Quick test_disconnected_path_raises;
    Alcotest.test_case "diameter" `Quick test_diameter;
    Alcotest.test_case "longest path heuristic" `Quick test_longest_path_heuristic;
    Alcotest.test_case "coloring small" `Quick test_coloring_small;
    QCheck_alcotest.to_alcotest prop_coloring_proper;
    Alcotest.test_case "largest class" `Quick test_largest_class;
    QCheck_alcotest.to_alcotest prop_matching_valid;
    Alcotest.test_case "matching prefers weight" `Quick test_matching_prefers_weight;
    Alcotest.test_case "matching improvement" `Quick test_matching_improvement;
    Alcotest.test_case "components" `Quick test_components;
    Alcotest.test_case "is_connected" `Quick test_is_connected;
    Alcotest.test_case "add/remove keeps degrees exact" `Quick test_add_remove_degree_exact;
    QCheck_alcotest.to_alcotest prop_csr_matches_graph;
  ]
