(* Property-based tests over the core invariants. *)

module Arch = Qcr_arch.Arch
module Graph = Qcr_graph.Graph
module Generate = Qcr_graph.Generate
module Circuit = Qcr_circuit.Circuit
module Gate = Qcr_circuit.Gate
module Program = Qcr_circuit.Program
module Mapping = Qcr_circuit.Mapping
module Schedule = Qcr_swapnet.Schedule
module Ata = Qcr_swapnet.Ata
module Config = Qcr_core.Config
module Pipeline = Qcr_core.Pipeline
module Prng = Qcr_util.Prng

(* The ATA property holds for arbitrary rectangle shapes of each lattice
   family (not just the sizes unit tests pin down). *)
let prop_ata_coverage_random_shapes =
  QCheck.Test.make ~name:"ATA schedules cover all pairs on random shapes" ~count:12
    QCheck.(triple (int_range 2 5) (int_range 2 5) (int_bound 3))
    (fun (a, b, kind_pick) ->
      let arch =
        match kind_pick with
        | 0 -> Arch.grid ~rows:a ~cols:b
        | 1 -> Arch.sycamore ~rows:(2 * a) ~cols:b
        | 2 -> Arch.hexagon ~rows:(2 * a) ~cols:b
        | _ -> Arch.heavy_hex ~rows:a ~row_len:(max 3 ((4 * (b / 2)) + 3))
      in
      let sched = Ata.schedule arch in
      let n = Arch.qubit_count arch in
      Schedule.validate (Arch.graph arch) sched = Ok ()
      && Schedule.covers_all_pairs ~n sched)

(* The linear pattern touches each pair exactly once, for any length. *)
let prop_linear_touch_once =
  QCheck.Test.make ~name:"linear pattern touches each pair exactly once" ~count:30
    QCheck.(int_range 2 40)
    (fun n ->
      let sched = Qcr_swapnet.Linear.pattern (Array.init n (fun i -> i)) in
      Schedule.touch_count sched = n * (n - 1) / 2
      && Schedule.covers_all_pairs ~n sched)

(* Realization against random sparse programs: the emitted edge set equals
   the program edge set. *)
let prop_realize_exact_edges =
  QCheck.Test.make ~name:"realize emits exactly the program edges" ~count:25
    QCheck.(pair (int_bound 10000) (int_range 4 16))
    (fun (seed, n) ->
      let rng = Prng.create seed in
      let g = Generate.erdos_renyi rng ~n ~density:0.35 in
      let arch = Arch.smallest_for Arch.Grid n in
      let program = Program.make g Program.Bare_cz in
      let mapping =
        Mapping.identity ~logical:n ~physical:(Arch.qubit_count arch)
      in
      let r =
        Schedule.realize ~program ~mapping ~n_phys:(Arch.qubit_count arch)
          (Ata.schedule arch)
      in
      let emitted = List.sort_uniq compare (List.map (fun (u, v) -> (min u v, max u v)) r.Schedule.emitted) in
      emitted = Graph.edges g)

(* Crosstalk-aware scheduling: within each greedy cycle, no two scheduled
   interaction gates sit on adjacent coupling sites.  (ASAP re-layering of
   the final circuit may re-pack cycles, so the invariant is checked on
   the engine's own cycles.) *)
let test_crosstalk_layers_clean () =
  let rng = Prng.create 12 in
  let g = Generate.erdos_renyi rng ~n:12 ~density:0.4 in
  let arch = Arch.grid ~rows:4 ~cols:3 in
  let config = { Config.default with Config.crosstalk_aware = true; use_selector = false } in
  let program = Program.make g Program.Bare_cz in
  let init = Mapping.identity ~logical:12 ~physical:12 in
  let engine = Qcr_core.Greedy.create ~config ~arch ~program ~init () in
  let device = Arch.graph arch in
  let adjacent (p1, q1) (p2, q2) =
    Graph.has_edge device p1 p2 || Graph.has_edge device p1 q2 || Graph.has_edge device q1 p2
    || Graph.has_edge device q1 q2
  in
  let seen = ref 0 in
  while not (Qcr_core.Greedy.finished engine) do
    ignore (Qcr_core.Greedy.step engine);
    let gates = Circuit.gates (Qcr_core.Greedy.circuit engine) in
    let fresh = List.filteri (fun i _ -> i >= !seen) gates in
    seen := List.length gates;
    let sites =
      List.filter_map (function Gate.Cz (a, b) -> Some (a, b) | _ -> None) fresh
    in
    let rec pairwise = function
      | [] -> ()
      | s :: rest ->
          List.iter
            (fun s' ->
              Alcotest.(check bool) "no crosstalk-adjacent parallel gates" false
                (adjacent s s'))
            rest;
          pairwise rest
    in
    pairwise sites
  done

(* Determinism of the full pipeline across architectures. *)
let prop_compile_deterministic =
  QCheck.Test.make ~name:"compilation is deterministic" ~count:10
    QCheck.(pair (int_bound 10000) (int_range 6 14))
    (fun (seed, n) ->
      let rng = Prng.create seed in
      let g = Generate.erdos_renyi rng ~n ~density:0.3 in
      let arch = Arch.smallest_for Arch.Heavy_hex n in
      let program = Program.make g Program.Bare_cz in
      let a = Pipeline.run_exn (Pipeline.Request.make arch program) and b = Pipeline.run_exn (Pipeline.Request.make arch program) in
      a.Pipeline.depth = b.Pipeline.depth && a.Pipeline.cx = b.Pipeline.cx)

(* ---- Parallel execution equivalence ------------------------------- *)

module Statevector = Qcr_sim.Statevector
module Trajectory = Qcr_sim.Trajectory
module Noise = Qcr_arch.Noise
module Pool = Qcr_par.Pool

(* Run [f] with the default pool resized to [domains] and the statevector
   parallel threshold set to [threshold], restoring both afterwards so the
   rest of the suite sees the ambient configuration. *)
let with_pool_config ~domains ~threshold f =
  let old_domains = Pool.default_domain_count () in
  let old_threshold = Statevector.par_threshold () in
  Pool.set_default_domains domains;
  Statevector.set_par_threshold threshold;
  Fun.protect
    ~finally:(fun () ->
      Pool.set_default_domains old_domains;
      Statevector.set_par_threshold old_threshold)
    f

let random_circuit seed n =
  let rng = Prng.create seed in
  let c = Circuit.create n in
  let wire () = Prng.int rng n in
  let pair () =
    let a = wire () in
    let b = (a + 1 + Prng.int rng (n - 1)) mod n in
    (a, b)
  in
  for _ = 1 to 30 do
    let theta = Prng.float rng 6.28 in
    Circuit.add c
      (match Prng.int rng 8 with
      | 0 -> Gate.H (wire ())
      | 1 -> Gate.X (wire ())
      | 2 -> Gate.Rx (wire (), theta)
      | 3 -> Gate.Rz (wire (), theta)
      | 4 ->
          let a, b = pair () in
          Gate.Cx (a, b)
      | 5 ->
          let a, b = pair () in
          Gate.Cz (a, b)
      | 6 ->
          let a, b = pair () in
          Gate.Rzz (a, b, theta)
      | _ ->
          let a, b = pair () in
          Gate.Swap (a, b))
  done;
  c

(* The parallel kernels (threshold 1 forces every sweep through the
   chunked path, including the pair-decomposed 1q kernel) must reproduce
   the sequential amplitudes bit for bit. *)
let prop_statevector_par_seq_identical =
  QCheck.Test.make ~name:"parallel statevector kernels bit-identical to sequential"
    ~count:15
    QCheck.(pair (int_bound 10000) (int_range 4 8))
    (fun (seed, n) ->
      let c = random_circuit seed n in
      let seq = with_pool_config ~domains:1 ~threshold:max_int (fun () -> Statevector.run c) in
      let par = with_pool_config ~domains:4 ~threshold:1 (fun () -> Statevector.run c) in
      let size = 1 lsl n in
      let ok = ref true in
      for i = 0 to size - 1 do
        let re_s, im_s = Statevector.amplitude seq i in
        let re_p, im_p = Statevector.amplitude par i in
        if
          Int64.bits_of_float re_s <> Int64.bits_of_float re_p
          || Int64.bits_of_float im_s <> Int64.bits_of_float im_p
        then ok := false
      done;
      !ok)

(* Monte-Carlo sampling over split PRNG streams: the averaged distribution
   is bit-identical for any pool size at a fixed seed. *)
let prop_trajectory_domains_bit_identical =
  QCheck.Test.make ~name:"trajectory distribution bit-identical across pool sizes"
    ~count:4
    QCheck.(pair (int_bound 1000) (int_range 6 9))
    (fun (seed, n) ->
      let rng = Prng.create seed in
      let g = Generate.erdos_renyi rng ~n ~density:0.4 in
      let arch = Arch.smallest_for Arch.Line n in
      let noise = Noise.sampled ~seed:5 arch in
      let program = Program.make g Program.Bare_cz in
      let r = Pipeline.run_exn (Pipeline.Request.make ~noise arch program) in
      let sample () =
        Trajectory.distribution ~seed:(seed + 1) ~trajectories:18 ~noise
          ~compiled:r.Pipeline.circuit ~final:r.Pipeline.final ()
      in
      let d1 = with_pool_config ~domains:1 ~threshold:max_int sample in
      let d4 = with_pool_config ~domains:4 ~threshold:1 sample in
      Array.length d1 = Array.length d4
      && Array.for_all2
           (fun a b -> Int64.bits_of_float a = Int64.bits_of_float b)
           d1 d4)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_ata_coverage_random_shapes;
    QCheck_alcotest.to_alcotest prop_linear_touch_once;
    QCheck_alcotest.to_alcotest prop_realize_exact_edges;
    Alcotest.test_case "crosstalk layers clean" `Quick test_crosstalk_layers_clean;
    QCheck_alcotest.to_alcotest prop_compile_deterministic;
    QCheck_alcotest.to_alcotest prop_statevector_par_seq_identical;
    QCheck_alcotest.to_alcotest prop_trajectory_domains_bit_identical;
  ]
