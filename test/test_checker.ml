module Arch = Qcr_arch.Arch
module Graph = Qcr_graph.Graph
module Generate = Qcr_graph.Generate
module Circuit = Qcr_circuit.Circuit
module Gate = Qcr_circuit.Gate
module Program = Qcr_circuit.Program
module Mapping = Qcr_circuit.Mapping
module Pipeline = Qcr_core.Pipeline
module Checker = Qcr_core.Checker
module Prng = Qcr_util.Prng

let qaoa g = Program.make g (Program.Qaoa_maxcut { gamma = 0.3; beta = 0.5 })

let test_certifies_all_compilers () =
  let rng = Prng.create 17 in
  List.iter
    (fun (kind, n, density) ->
      let g = Generate.erdos_renyi rng ~n ~density in
      let program = qaoa g in
      let arch = Arch.smallest_for kind n in
      List.iter
        (fun (name, r) ->
          match Checker.certify ~arch ~program r with
          | Ok () -> ()
          | Error vs ->
              Alcotest.failf "%s not certified: %s" name (String.concat "; " vs))
        [
          ("ours", Pipeline.run_exn (Pipeline.Request.make arch program));
          ("ata", Pipeline.run_exn (Pipeline.Request.make ~mode:Pipeline.Request.Ata arch program));
          ("greedy", Pipeline.run_exn (Pipeline.Request.make ~mode:Pipeline.Request.Greedy arch program));
          ("qaim", Qcr_baselines.Qaim_like.compile arch program);
          ("paulihedral", Qcr_baselines.Paulihedral_like.compile arch program);
          ("2qan", Qcr_baselines.Twoqan_like.compile ~anneal_moves:1000 arch program);
        ])
    [
      (Arch.Grid, 12, 0.4);
      (Arch.Heavy_hex, 20, 0.3);
      (Arch.Sycamore, 16, 0.3);
      (Arch.Hexagon, 16, 0.25);
      (Arch.Grid3d, 8, 0.5);
    ]

let test_certifies_large_compilation () =
  (* beyond simulator reach: certify a 128-qubit compilation *)
  let rng = Prng.create 99 in
  let g = Generate.erdos_renyi rng ~n:128 ~density:0.3 in
  let program = Program.make g Program.Bare_cz in
  let arch = Arch.smallest_for Arch.Heavy_hex 128 in
  let r = Pipeline.run_exn (Pipeline.Request.make arch program) in
  Checker.certify_exn ~arch ~program r

let test_detects_missing_gate () =
  let g = Generate.cycle 6 in
  let program = Program.make g Program.Bare_cz in
  let arch = Arch.grid ~rows:2 ~cols:3 in
  let r = Pipeline.run_exn (Pipeline.Request.make arch program) in
  (* drop one interaction gate *)
  let tampered = Circuit.create (Circuit.qubit_count r.Pipeline.circuit) in
  let dropped = ref false in
  List.iter
    (fun gate ->
      match gate with
      | Gate.Cz _ when not !dropped -> dropped := true
      | _ -> Circuit.add tampered gate)
    (Circuit.gates r.Pipeline.circuit);
  let bad = { r with Pipeline.circuit = tampered } in
  Alcotest.(check bool) "tamper detected" true
    (Checker.certify ~arch ~program bad <> Ok ())

let test_detects_wrong_final_mapping () =
  let g = Generate.cycle 6 in
  let program = Program.make g Program.Bare_cz in
  let arch = Arch.grid ~rows:2 ~cols:3 in
  let r = Pipeline.run_exn (Pipeline.Request.make arch program) in
  let wrong = Mapping.copy r.Pipeline.final in
  Mapping.apply_swap wrong 0 5;
  let bad = { r with Pipeline.final = wrong } in
  Alcotest.(check bool) "wrong mapping detected" true
    (Checker.certify ~arch ~program bad <> Ok ())

let test_detects_uncoupled_gate () =
  let g = Graph.of_edges 2 [ (0, 1) ] in
  let program = Program.make g Program.Bare_cz in
  let arch = Arch.line 3 in
  let circuit = Circuit.create 3 in
  Circuit.add circuit (Gate.Cz (0, 2));
  let bad =
    {
      Pipeline.circuit;
      initial = Mapping.identity ~logical:2 ~physical:3;
      final = Mapping.identity ~logical:2 ~physical:3;
      depth = Circuit.depth2q circuit;
      cx = Circuit.cx_count circuit;
      swap_count = 0;
      log_fidelity = 0.0;
      strategy = Pipeline.Pure_greedy;
      compile_seconds = 0.0;
    }
  in
  match Checker.certify ~arch ~program bad with
  | Ok () -> Alcotest.fail "uncoupled gate not detected"
  | Error vs ->
      Alcotest.(check bool) "mentions coupling" true
        (List.exists (fun v -> String.length v > 0) vs)

let suite =
  [
    Alcotest.test_case "certifies all compilers" `Slow test_certifies_all_compilers;
    Alcotest.test_case "certifies 128q compilation" `Quick test_certifies_large_compilation;
    Alcotest.test_case "detects missing gate" `Quick test_detects_missing_gate;
    Alcotest.test_case "detects wrong final mapping" `Quick test_detects_wrong_final_mapping;
    Alcotest.test_case "detects uncoupled gate" `Quick test_detects_uncoupled_gate;
  ]
