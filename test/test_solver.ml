module Graph = Qcr_graph.Graph
module Generate = Qcr_graph.Generate
module Mapping = Qcr_circuit.Mapping
module Heuristic = Qcr_solver.Heuristic
module Astar = Qcr_solver.Astar
module Schedule = Qcr_swapnet.Schedule
module Bitset = Qcr_util.Bitset

let solve ?node_budget ?weight problem coupling =
  let init =
    Mapping.identity ~logical:(Graph.vertex_count problem)
      ~physical:(Graph.vertex_count coupling)
  in
  Astar.solve ?node_budget ?weight ~problem ~coupling ~init ()

let depth_of problem coupling =
  match solve problem coupling with
  | Some o -> o.Astar.depth
  | None -> Alcotest.fail "solver found no solution"

let test_pair_cost () =
  (* adjacent qubits: the busier side dominates *)
  Alcotest.(check int) "adjacent" 3 (Heuristic.pair_cost ~deg_i:3 ~deg_j:2 ~dist:1);
  (* distance 3, degrees 3/2: splitting 2 moves optimally gives 4 (the
     paper's worked example, Fig 15) *)
  Alcotest.(check int) "paper example" 4 (Heuristic.pair_cost ~deg_i:3 ~deg_j:2 ~dist:3);
  Alcotest.(check int) "symmetric-ish" 4 (Heuristic.pair_cost ~deg_i:2 ~deg_j:3 ~dist:3);
  Alcotest.(check int) "single gate far" 2 (Heuristic.pair_cost ~deg_i:1 ~deg_j:1 ~dist:3)

let test_h_lower_bound_trivial () =
  let degree = [| 1; 2; 1 |] in
  let phys_of_log = [| 0; 1; 2 |] in
  let dist p q = abs (p - q) in
  let h = Heuristic.h ~remaining:[ (0, 1); (1, 2) ] ~degree ~dist ~phys_of_log in
  Alcotest.(check int) "h = max pair cost" 2 h

let test_single_gate () =
  let problem = Graph.of_edges 2 [ (0, 1) ] in
  Alcotest.(check int) "one adjacent gate" 1 (depth_of problem (Generate.path 2))

let test_gate_needing_swap () =
  (* qubits 0 and 2 on a 3-line: swap then gate = depth 2 *)
  let problem = Graph.of_edges 3 [ (0, 2) ] in
  Alcotest.(check int) "swap + gate" 2 (depth_of problem (Generate.path 3))

(* The paper's linear-pattern depths: a clique on an n-line compiles to
   exactly 2n - 2 cycles (n CPHASE layers + n-2 SWAP layers, Fig 6). *)
let test_clique_line_depths () =
  List.iter
    (fun n ->
      Alcotest.(check int)
        (Printf.sprintf "line-%d clique depth" n)
        ((2 * n) - 2)
        (depth_of (Graph.complete n) (Generate.path n)))
    [ 3; 4; 5 ]

let test_biclique_2xn () =
  (* bipartite all-to-all across a 2x3 grid: depth 2n - 1 with n = 3
     (n CPHASE layers interleaved with n-1 SWAP layers, Fig 8/9) *)
  let coupling =
    Graph.of_edges 6 [ (0, 1); (1, 2); (3, 4); (4, 5); (0, 3); (1, 4); (2, 5) ]
  in
  let biclique = Graph.create 6 in
  List.iter
    (fun (u, v) -> Graph.add_edge biclique u v)
    [ (0, 3); (0, 4); (0, 5); (1, 3); (1, 4); (1, 5); (2, 3); (2, 4); (2, 5) ];
  match solve biclique coupling with
  | None -> Alcotest.fail "no solution"
  | Some o ->
      Alcotest.(check int) "2xUnit depth" 5 o.Astar.depth;
      Alcotest.(check bool) "optimal" true o.Astar.optimal

let test_solution_schedule_valid () =
  let problem = Graph.complete 4 in
  let coupling = Generate.path 4 in
  match solve problem coupling with
  | None -> Alcotest.fail "no solution"
  | Some o ->
      let init = Mapping.identity ~logical:4 ~physical:4 in
      let sched = Astar.schedule_of_outcome o ~init in
      (match Schedule.validate coupling sched with
      | Ok () -> ()
      | Error m -> Alcotest.fail m);
      (* every problem edge touched *)
      let met, _ = Schedule.coverage ~n:4 sched in
      Graph.iter_edges
        (fun u v ->
          Alcotest.(check bool)
            (Printf.sprintf "edge %d-%d scheduled" u v)
            true
            (Bitset.mem met ((min u v * 4) + max u v)))
        problem

let test_solver_depth_leq_pattern () =
  (* the solver is depth-optimal, so it can never exceed the structured
     pattern's cycle count on the same instance *)
  let n = 5 in
  let arch = Qcr_arch.Arch.line n in
  let pattern_cycles =
    Schedule.cycle_count (Qcr_swapnet.Linear.pattern (Qcr_arch.Arch.long_path arch))
  in
  let d = depth_of (Graph.complete n) (Generate.path n) in
  Alcotest.(check bool) "solver <= pattern" true (d <= pattern_cycles)

let test_budget_anytime () =
  (* tiny budget with weight > 1 still returns some schedule *)
  let problem = Graph.complete 5 in
  match solve ~node_budget:100000 ~weight:1.5 problem (Generate.path 5) with
  | None -> Alcotest.fail "weighted search found nothing"
  | Some o ->
      Alcotest.(check bool) "not claimed optimal" false o.Astar.optimal;
      Alcotest.(check bool) "depth sane" true (o.Astar.depth >= 8)

(* Admissibility cross-check: weight 0 turns A* into uniform-cost search
   (h ignored), which is exact by construction; the heuristic search must
   find the same optimal depth on random tiny instances. *)
let test_heuristic_vs_uniform_cost () =
  let rng = Qcr_util.Prng.create 66 in
  for _ = 1 to 8 do
    let n = 3 + Qcr_util.Prng.int rng 2 in
    let problem = Generate.erdos_renyi rng ~n ~density:0.7 in
    if Graph.edge_count problem > 0 then begin
      let coupling = Generate.path n in
      let d_heuristic =
        match solve problem coupling with Some o -> o.Astar.depth | None -> -1
      in
      let d_exact =
        match solve ~weight:0.0 problem coupling with Some o -> o.Astar.depth | None -> -2
      in
      Alcotest.(check int) "heuristic = uniform cost" d_exact d_heuristic
    end
  done

(* The Zobrist-keyed closed set must be a pure representation change: same
   depth, same swap count, and — since ties are broken identically — the
   same number of expansions as the string-keyed reference. *)
let test_zobrist_matches_string_keying () =
  let biclique = Graph.create 6 in
  List.iter
    (fun (u, v) -> Graph.add_edge biclique u v)
    [ (0, 3); (0, 4); (0, 5); (1, 3); (1, 4); (1, 5); (2, 3); (2, 4); (2, 5) ];
  let grid2x3 =
    Graph.of_edges 6 [ (0, 1); (1, 2); (3, 4); (4, 5); (0, 3); (1, 4); (2, 5) ]
  in
  let cases =
    [
      ("k4-line4", Graph.complete 4, Generate.path 4);
      ("k5-line5", Graph.complete 5, Generate.path 5);
      ("nonclique", Graph.of_edges 4 [ (0, 1); (2, 3); (0, 3) ], Generate.path 4);
      ("biclique-grid2x3", biclique, grid2x3);
    ]
  in
  List.iter
    (fun (name, problem, coupling) ->
      let init =
        Mapping.identity ~logical:(Graph.vertex_count problem)
          ~physical:(Graph.vertex_count coupling)
      in
      let get keying =
        match Astar.solve ~keying ~problem ~coupling ~init () with
        | Some o -> o
        | None -> Alcotest.fail (name ^ ": no solution")
      in
      let s = get `String and z = get `Zobrist in
      Alcotest.(check int) (name ^ " depth") s.Astar.depth z.Astar.depth;
      Alcotest.(check int) (name ^ " swap_total") s.Astar.swap_total z.Astar.swap_total;
      Alcotest.(check int) (name ^ " expanded") s.Astar.expanded z.Astar.expanded;
      Alcotest.(check int) (name ^ " string collisions") 0 s.Astar.collisions)
    cases

let prop_zobrist_matches_string_random =
  QCheck.Test.make ~name:"zobrist keying = string keying on random instances" ~count:12
    QCheck.(int_bound 10000)
    (fun seed ->
      let rng = Qcr_util.Prng.create seed in
      let n = 3 + Qcr_util.Prng.int rng 2 in
      let problem = Generate.erdos_renyi rng ~n ~density:0.7 in
      Graph.edge_count problem = 0
      ||
      let init = Mapping.identity ~logical:n ~physical:n in
      let coupling = Generate.path n in
      let get keying =
        match Astar.solve ~keying ~problem ~coupling ~init () with
        | Some o -> (o.Astar.depth, o.Astar.swap_total, o.Astar.expanded)
        | None -> (-1, -1, -1)
      in
      get `String = get `Zobrist)

let test_nonclique_instance () =
  let problem = Graph.of_edges 4 [ (0, 1); (2, 3); (0, 3) ] in
  let coupling = Generate.path 4 in
  match solve problem coupling with
  | None -> Alcotest.fail "no solution"
  | Some o ->
      (* two disjoint gates run in parallel; third needs distance work *)
      Alcotest.(check bool) "small depth" true (o.Astar.depth <= 3);
      Alcotest.(check bool) "optimal" true o.Astar.optimal

let suite =
  [
    Alcotest.test_case "pair cost" `Quick test_pair_cost;
    Alcotest.test_case "h lower bound" `Quick test_h_lower_bound_trivial;
    Alcotest.test_case "single gate" `Quick test_single_gate;
    Alcotest.test_case "gate needing swap" `Quick test_gate_needing_swap;
    Alcotest.test_case "clique line depths" `Slow test_clique_line_depths;
    Alcotest.test_case "2xUnit biclique" `Quick test_biclique_2xn;
    Alcotest.test_case "solution schedule valid" `Quick test_solution_schedule_valid;
    Alcotest.test_case "solver <= pattern" `Quick test_solver_depth_leq_pattern;
    Alcotest.test_case "budget anytime" `Quick test_budget_anytime;
    Alcotest.test_case "zobrist = string keying" `Quick test_zobrist_matches_string_keying;
    QCheck_alcotest.to_alcotest prop_zobrist_matches_string_random;
    Alcotest.test_case "non-clique instance" `Quick test_nonclique_instance;
    Alcotest.test_case "heuristic admissible (vs UCS)" `Slow test_heuristic_vs_uniform_cost;
  ]
