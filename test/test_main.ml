let () =
  Alcotest.run "qcr"
    [
      ("util", Test_util.suite);
      ("par", Test_par.suite);
      ("obs", Test_obs.suite);
      ("registry", Test_registry.suite);
      ("asciiplot", Test_asciiplot.suite);
      ("api-surface", Test_api_surface.suite);
      ("graph", Test_graph.suite);
      ("arch", Test_arch.suite);
      ("circuit", Test_circuit.suite);
      ("swapnet", Test_swapnet.suite);
      ("permute", Test_permute.suite);
      ("solver", Test_solver.suite);
      ("core", Test_core.suite);
      ("greedy", Test_greedy.suite);
      ("placement", Test_placement.suite);
      ("predict", Test_predict.suite);
      ("checker", Test_checker.suite);
      ("multilevel", Test_multilevel.suite);
      ("baselines", Test_baselines.suite);
      ("sim", Test_sim.suite);
      ("trajectory", Test_trajectory.suite);
      ("workloads", Test_workloads.suite);
      ("qasm", Test_qasm_extra.suite);
      ("lower", Test_lower.suite);
      ("service", Test_service.suite);
      ("persist", Test_persist.suite);
      ("net", Test_net.suite);
      ("fault", Test_fault.suite);
      ("integration", Test_integration.suite);
      ("properties", Test_properties.suite);
    ]
