(* The persistent compile-cache store and warm restarts: record-encoding
   round-trips, crash safety of the flush protocol (including a kill
   injected between the segment rename and the index rename), corruption
   containment on load, and service-level warm-restart bit-identity. *)

module Json = Qcr_obs.Json
module Fault = Qcr_fault.Fault
module Request = Qcr_service.Compile_request
module Reply = Qcr_service.Compile_reply
module Service = Qcr_service.Service
module Store = Qcr_service.Cache_store

(* Fresh scratch directory per call, removed by the caller's process
   exit being irrelevant: tests clean up eagerly via [Fun.protect]. *)
let counter = ref 0

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let with_dir f =
  incr counter;
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "qcr-test-persist-%d-%d" (Unix.getpid ()) !counter)
  in
  rm_rf dir;
  Fun.protect
    ~finally:(fun () ->
      Fault.disarm ();
      rm_rf dir)
    (fun () -> f dir)

let open_ok dir =
  match Store.open_dir dir with Ok s -> s | Error e -> Alcotest.fail ("open_dir: " ^ e)

let append_ok store records =
  match Store.append store records with
  | Ok n -> n
  | Error e -> Alcotest.fail ("append: " ^ e)

let arm spec_str =
  match Fault.spec_of_string spec_str with
  | Ok s -> Fault.arm s
  | Error e -> Alcotest.fail ("fault spec: " ^ e)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path content =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc content)

let segment_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".qcs")
  |> List.sort compare

(* ---------- record encoding ---------- *)

let test_record_roundtrip_basic () =
  let enc = Store.encode_record ~key:"abc" "payload bytes" in
  (match Store.decode_record enc ~pos:0 with
  | Ok (key, body, next) ->
      Alcotest.(check string) "key" "abc" key;
      Alcotest.(check string) "body" "payload bytes" body;
      Alcotest.(check int) "consumed everything" (String.length enc) next
  | Error e -> Alcotest.fail e);
  (match Store.decode_record (String.sub enc 0 (String.length enc - 1)) ~pos:0 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated record must not decode");
  let flipped = Bytes.of_string enc in
  Bytes.set flipped (Bytes.length flipped - 1)
    (Char.chr (Char.code (Bytes.get flipped (Bytes.length flipped - 1)) lxor 1));
  (match Store.decode_record (Bytes.to_string flipped) ~pos:0 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "flipped body byte must fail the digest check");
  Alcotest.check_raises "oversized key rejected"
    (Invalid_argument "Cache_store.encode_record: key too long") (fun () ->
      ignore (Store.encode_record ~key:(String.make 65536 'k') ""))

let prop_record_roundtrip =
  QCheck.Test.make ~name:"cache store record encoding round-trips" ~count:200
    QCheck.(list (pair (string_of_size Gen.(0 -- 80)) string))
    (fun records ->
      let encoded =
        String.concat "" (List.map (fun (key, body) -> Store.encode_record ~key body) records)
      in
      let rec decode pos acc =
        if pos >= String.length encoded then List.rev acc
        else
          match Store.decode_record encoded ~pos with
          | Ok (key, body, next) -> decode next ((key, body) :: acc)
          | Error e -> QCheck.Test.fail_reportf "decode at %d: %s" pos e
      in
      decode 0 [] = records)

(* ---------- store round-trips and idempotence ---------- *)

let test_store_roundtrip () =
  with_dir @@ fun dir ->
  let s1 = open_ok dir in
  Alcotest.(check int) "fresh store is empty" 0 (Store.persisted s1);
  Alcotest.(check int) "two written" 2 (append_ok s1 [ ("k1", "body one"); ("k2", "body two") ]);
  Alcotest.(check int) "idempotent re-append" 0 (append_ok s1 [ ("k1", "body one") ]);
  Alcotest.(check int) "one segment" 1 (Store.segment_count s1);
  let s2 = open_ok dir in
  Alcotest.(check (list (pair string string)))
    "reopen sees both, oldest first"
    [ ("k1", "body one"); ("k2", "body two") ]
    (Store.entries s2);
  Alcotest.(check int) "no skips" 0 (Store.corrupt_skipped s2);
  Alcotest.(check int) "third record in a second segment" 1 (append_ok s2 [ ("k3", "3") ]);
  Alcotest.(check int) "two segments" 2 (Store.segment_count s2);
  let s3 = open_ok dir in
  Alcotest.(check int) "all three after reopen" 3 (Store.persisted s3)

let test_store_crash_between_renames () =
  with_dir @@ fun dir ->
  let s = open_ok dir in
  ignore (append_ok s [ ("k1", "one") ]);
  (* two fresh records probe [cache.flush] twice while encoding; the
     third hit is [fire] in the window between the segment rename and
     the index rename *)
  arm "seed=5,cache.flush:crash:nth=3";
  (match Store.append s [ ("k2", "two"); ("k3", "three") ] with
  | Error _ -> ()
  | Ok n -> Alcotest.fail (Printf.sprintf "append must fail mid-crash, wrote %d" n));
  Fault.disarm ();
  Alcotest.(check bool) "handle state rolled back" false (Store.mem s "k2");
  Alcotest.(check int) "orphan segment on disk" 2 (List.length (segment_files dir));
  let reopened = open_ok dir in
  Alcotest.(check (list (pair string string)))
    "old index ignores the orphan"
    [ ("k1", "one") ]
    (Store.entries reopened);
  (* the retry overwrites the orphan at the same sequence number *)
  Alcotest.(check int) "retry succeeds" 2 (append_ok reopened [ ("k2", "two"); ("k3", "three") ]);
  Alcotest.(check int) "still two segments" 2 (List.length (segment_files dir));
  Alcotest.(check int) "all keys after retry" 3 (Store.persisted (open_ok dir))

let test_store_damage_contained () =
  with_dir @@ fun dir ->
  let s = open_ok dir in
  ignore (append_ok s [ ("k1", "first body"); ("k2", "second body"); ("k3", "third body") ]);
  let seg = Filename.concat dir (List.hd (segment_files dir)) in
  let data = read_file seg in
  (* truncate mid-record: the tail record is lost, earlier ones survive *)
  write_file seg (String.sub data 0 (String.length data - 5));
  let t = open_ok dir in
  Alcotest.(check int) "truncation skipped the tail" 1 (Store.corrupt_skipped t);
  Alcotest.(check (list string)) "first two survive" [ "k1"; "k2" ]
    (List.map fst (Store.entries t));
  (* flip one byte in the first record's body: digest validation rejects
     it and — boundaries being untrustworthy — the rest of the segment *)
  write_file seg data;
  let flipped = Bytes.of_string data in
  let pos = String.length (Store.encode_record ~key:"k1" "") + 2 in
  Bytes.set flipped pos (Char.chr (Char.code (Bytes.get flipped pos) lxor 0x10));
  write_file seg (Bytes.to_string flipped);
  let f = open_ok dir in
  Alcotest.(check bool) "damage counted" true (Store.corrupt_skipped f >= 1);
  Alcotest.(check bool) "damaged record never loads" false
    (List.mem_assoc "k1" (Store.entries f));
  (* a deleted segment is one skip, not an error *)
  write_file seg data;
  Sys.remove seg;
  let g = open_ok dir in
  Alcotest.(check int) "missing segment skipped" 1 (Store.corrupt_skipped g);
  (* malformed index: cold start, not a crash *)
  write_file (Filename.concat dir "index.json") "{not json";
  let m = open_ok dir in
  Alcotest.(check int) "malformed index = empty store" 0 (Store.persisted m);
  Alcotest.(check int) "and one skip" 1 (Store.corrupt_skipped m)

let test_store_load_fault_injection () =
  with_dir @@ fun dir ->
  let s = open_ok dir in
  ignore (append_ok s [ ("k1", "first body"); ("k2", "second body") ]);
  arm "seed=9,cache.load:corrupt:always";
  let t = open_ok dir in
  Fault.disarm ();
  Alcotest.(check int) "every record rejected" 2 (Store.corrupt_skipped t);
  Alcotest.(check int) "nothing served" 0 (List.length (Store.entries t))

(* ---------- service-level warm restart ---------- *)

let triangle = [ (0, 1); (1, 2); (0, 2) ]

let req ?id gamma =
  Request.make ?id
    ~interaction:(Qcr_circuit.Program.Qaoa_maxcut { gamma; beta = 0.25 })
    ~arch_kind:Qcr_arch.Arch.Line ~qubits:4 ~edges:triangle ()

let reply_content r =
  Json.to_string
    (Reply.strip_volatile (Reply.to_json { r with Reply.id = ""; cached = false }))

let test_service_warm_restart () =
  with_dir @@ fun dir ->
  let cold = Service.create ~store:(open_ok dir) () in
  let c1 = Service.submit cold (req 0.1) in
  let c2 = Service.submit cold (req 0.2) in
  (match Service.flush cold with
  | Ok n -> Alcotest.(check int) "both persisted" 2 n
  | Error e -> Alcotest.fail e);
  (match Service.flush cold with
  | Ok n -> Alcotest.(check int) "second flush is empty" 0 n
  | Error e -> Alcotest.fail e);
  (* the restart: a fresh handle and a fresh service on the same dir *)
  let warm = Service.create ~store:(open_ok dir) () in
  let w1 = Service.submit warm (req 0.1) in
  let w2 = Service.submit warm (req 0.2) in
  Alcotest.(check bool) "first served from disk" true w1.Reply.cached;
  Alcotest.(check bool) "second served from disk" true w2.Reply.cached;
  Alcotest.(check string) "bit-identical 0.1" (reply_content c1) (reply_content w1);
  Alcotest.(check string) "bit-identical 0.2" (reply_content c2) (reply_content w2);
  let st = Service.stats warm in
  Alcotest.(check int) "all hits" 2 st.Service.cache_hits;
  Alcotest.(check int) "no misses" 0 st.Service.cache_misses

let test_service_survives_store_damage () =
  with_dir @@ fun dir ->
  let cold = Service.create ~store:(open_ok dir) () in
  let reference = Service.submit cold (req 0.3) in
  (match Service.flush cold with Ok _ -> () | Error e -> Alcotest.fail e);
  (* flip a byte in the only segment: the warm service must reject the
     record, recompile cold, and still answer bit-identically *)
  let seg = Filename.concat dir (List.hd (segment_files dir)) in
  let data = Bytes.of_string (read_file seg) in
  Bytes.set data
    (Bytes.length data - 3)
    (Char.chr (Char.code (Bytes.get data (Bytes.length data - 3)) lxor 0x40));
  write_file seg (Bytes.to_string data);
  let warm = Service.create ~store:(open_ok dir) () in
  let r = Service.submit warm (req 0.3) in
  Alcotest.(check bool) "damaged entry recompiles" false r.Reply.cached;
  Alcotest.(check string) "recompiled bit-identically" (reply_content reference)
    (reply_content r);
  let st = Service.stats warm in
  Alcotest.(check bool) "damage surfaced as corruption" true (st.Service.cache_corrupt >= 1);
  (* self-heal: the re-flush persists the recompiled entry again *)
  (match Service.flush warm with
  | Ok n -> Alcotest.(check int) "healed" 1 n
  | Error e -> Alcotest.fail e);
  let healed = Service.create ~store:(open_ok dir) () in
  Alcotest.(check bool) "served warm after healing" true
    (Service.submit healed (req 0.3)).Reply.cached

let test_service_flush_crash_is_an_error () =
  with_dir @@ fun dir ->
  let s = Service.create ~store:(open_ok dir) () in
  ignore (Service.submit s (req 0.4));
  arm "seed=3,cache.flush:crash:nth=1";
  (match Service.flush s with
  | Error _ -> ()
  | Ok n -> Alcotest.fail (Printf.sprintf "flush must surface the crash, wrote %d" n));
  Fault.disarm ();
  (match Service.flush s with
  | Ok n -> Alcotest.(check int) "retry persists" 1 n
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "entry on disk after retry" 1 (Store.persisted (open_ok dir))

let test_stats_export_cache_gauges () =
  let s = Service.create () in
  ignore (Service.submit s (req 0.5));
  let shards, bytes = Service.cache_info s in
  Alcotest.(check int) "default shard count" 16 shards;
  Alcotest.(check bool) "cached bytes tracked" true (bytes > 0);
  Alcotest.(check int) "one live entry" 1 (Service.cache_entries s);
  let j = Service.stats_to_json ~cache:(shards, bytes) (Service.stats s) in
  (match Json.member "shards" j with
  | Some (Json.Num n) -> Alcotest.(check int) "shards exported" shards (int_of_float n)
  | _ -> Alcotest.fail "stats_to_json must export \"shards\"");
  match Json.member "cache_bytes" j with
  | Some (Json.Num n) -> Alcotest.(check int) "cache_bytes exported" bytes (int_of_float n)
  | _ -> Alcotest.fail "stats_to_json must export \"cache_bytes\""

let suite =
  [
    Alcotest.test_case "record round-trip and rejects" `Quick test_record_roundtrip_basic;
    QCheck_alcotest.to_alcotest prop_record_roundtrip;
    Alcotest.test_case "store round-trip" `Quick test_store_roundtrip;
    Alcotest.test_case "crash between flush and rename" `Quick test_store_crash_between_renames;
    Alcotest.test_case "on-disk damage contained" `Quick test_store_damage_contained;
    Alcotest.test_case "load fault injection" `Quick test_store_load_fault_injection;
    Alcotest.test_case "service warm restart" `Quick test_service_warm_restart;
    Alcotest.test_case "service survives store damage" `Quick test_service_survives_store_damage;
    Alcotest.test_case "flush crash is a typed error" `Quick test_service_flush_crash_is_an_error;
    Alcotest.test_case "stats export cache gauges" `Quick test_stats_export_cache_gauges;
  ]
