module Sv = Qcr_sim.Statevector
module Channel = Qcr_sim.Channel
module Maxcut = Qcr_sim.Maxcut
module Optimizer = Qcr_sim.Optimizer
module Qaoa = Qcr_sim.Qaoa
module Lightcone = Qcr_sim.Lightcone
module Gate = Qcr_circuit.Gate
module Circuit = Qcr_circuit.Circuit
module Mapping = Qcr_circuit.Mapping
module Graph = Qcr_graph.Graph
module Generate = Qcr_graph.Generate
module Prng = Qcr_util.Prng

let test_initial_state () =
  let sv = Sv.create 3 in
  let re, im = Sv.amplitude sv 0 in
  Alcotest.(check (float 1e-12)) "amp re" 1.0 re;
  Alcotest.(check (float 1e-12)) "amp im" 0.0 im;
  Alcotest.(check (float 1e-12)) "norm" 1.0 (Sv.norm sv)

let test_h_uniform () =
  let c = Circuit.create 3 in
  for q = 0 to 2 do
    Circuit.add c (Gate.H q)
  done;
  let probs = Sv.probabilities (Sv.run c) in
  Array.iter
    (fun p -> Alcotest.(check (float 1e-9)) "uniform" 0.125 p)
    probs

let test_bell_state () =
  let c = Circuit.create 2 in
  Circuit.add c (Gate.H 0);
  Circuit.add c (Gate.Cx (0, 1));
  let probs = Sv.probabilities (Sv.run c) in
  Alcotest.(check (float 1e-9)) "p00" 0.5 probs.(0);
  Alcotest.(check (float 1e-9)) "p11" 0.5 probs.(3);
  Alcotest.(check (float 1e-9)) "p01" 0.0 probs.(1)

let test_x_flip () =
  let c = Circuit.create 2 in
  Circuit.add c (Gate.X 1);
  let probs = Sv.probabilities (Sv.run c) in
  Alcotest.(check (float 1e-12)) "flipped to |10> (bit1)" 1.0 probs.(2)

let test_swap_moves_amplitude () =
  let c = Circuit.create 2 in
  Circuit.add c (Gate.X 0);
  Circuit.add c (Gate.Swap (0, 1));
  let probs = Sv.probabilities (Sv.run c) in
  Alcotest.(check (float 1e-12)) "swapped" 1.0 probs.(2)

let test_cz_vs_cphase_pi () =
  let mk g =
    let c = Circuit.create 2 in
    Circuit.add c (Gate.H 0);
    Circuit.add c (Gate.H 1);
    Circuit.add c g;
    Sv.run c
  in
  let a = mk (Gate.Cz (0, 1)) in
  let b = mk (Gate.Cphase (0, 1, Float.pi)) in
  Alcotest.(check bool) "cz = cp(pi)" true (Sv.fidelity a b > 1.0 -. 1e-9)

let test_rzz_diagonal_phase () =
  (* rzz on |00> applies a global phase only: probabilities unchanged *)
  let c = Circuit.create 2 in
  Circuit.add c (Gate.Rzz (0, 1, 0.7));
  let probs = Sv.probabilities (Sv.run c) in
  Alcotest.(check (float 1e-12)) "still |00>" 1.0 probs.(0)

let test_swap_interact_equals_pair () =
  let rng = Prng.create 5 in
  for _ = 1 to 10 do
    let theta = Prng.float rng 3.0 in
    let c1 = Circuit.create 3 in
    Circuit.add c1 (Gate.H 0);
    Circuit.add c1 (Gate.H 2);
    Circuit.add c1 (Gate.Swap_interact (0, 1, theta));
    let c2 = Circuit.create 3 in
    Circuit.add c2 (Gate.H 0);
    Circuit.add c2 (Gate.H 2);
    Circuit.add c2 (Gate.Cphase (0, 1, theta));
    Circuit.add c2 (Gate.Swap (0, 1));
    Alcotest.(check bool) "merged = pair" true
      (Sv.fidelity (Sv.run c1) (Sv.run c2) > 1.0 -. 1e-9)
  done

let prop_random_circuit_norm =
  QCheck.Test.make ~name:"random circuits preserve norm" ~count:30
    QCheck.(int_bound 10000)
    (fun seed ->
      let rng = Prng.create seed in
      let n = 3 + Prng.int rng 3 in
      let c = Circuit.create n in
      for _ = 1 to 30 do
        let a = Prng.int rng n in
        let b = (a + 1 + Prng.int rng (n - 1)) mod n in
        match Prng.int rng 7 with
        | 0 -> Circuit.add c (Gate.H a)
        | 1 -> Circuit.add c (Gate.Rx (a, Prng.float rng 3.0))
        | 2 -> Circuit.add c (Gate.Rz (a, Prng.float rng 3.0))
        | 3 -> Circuit.add c (Gate.Cx (a, b))
        | 4 -> Circuit.add c (Gate.Cphase (a, b, Prng.float rng 3.0))
        | 5 -> Circuit.add c (Gate.Rzz (a, b, Prng.float rng 3.0))
        | _ -> Circuit.add c (Gate.Swap (a, b))
      done;
      abs_float (Sv.norm (Sv.run c) -. 1.0) < 1e-9)

let max_amp_diff a b n =
  let d = ref 0.0 in
  for i = 0 to (1 lsl n) - 1 do
    let ar, ai = Sv.amplitude a i and br, bi = Sv.amplitude b i in
    d := max !d (max (abs_float (ar -. br)) (abs_float (ai -. bi)))
  done;
  !d

let prop_cut_table_matches_cut_value =
  QCheck.Test.make ~name:"cut_table agrees with cut_value on every basis state" ~count:30
    QCheck.(int_bound 10000)
    (fun seed ->
      let rng = Prng.create seed in
      let n = 2 + Prng.int rng 6 in
      let g = Generate.erdos_renyi rng ~n ~density:0.5 in
      let table = Maxcut.cut_table g in
      let ok = ref true in
      for b = 0 to (1 lsl n) - 1 do
        if table.(b) <> Maxcut.cut_value g b then ok := false
      done;
      !ok)

let prop_fused_layer_matches_per_edge =
  QCheck.Test.make ~name:"fused cost layer = per-edge circuit state" ~count:25
    QCheck.(int_bound 10000)
    (fun seed ->
      let rng = Prng.create seed in
      let n = 2 + Prng.int rng 7 in
      let g = Generate.erdos_renyi rng ~n ~density:0.5 in
      let gamma = Prng.float rng 6.3 -. 3.15 and beta = Prng.float rng 6.3 -. 3.15 in
      let program =
        Qcr_circuit.Program.make g (Qcr_circuit.Program.Qaoa_maxcut { gamma; beta })
      in
      let sv_ref = Sv.run (Qcr_circuit.Program.logical_circuit program) in
      let sv_fused = Qaoa.fused_state (Qaoa.cost_layer g) ~gamma ~beta in
      max_amp_diff sv_ref sv_fused n < 1e-9)

let prop_run_fused_matches_run =
  QCheck.Test.make ~name:"run_fused = run on random circuits" ~count:30
    QCheck.(int_bound 10000)
    (fun seed ->
      let rng = Prng.create seed in
      let n = 2 + Prng.int rng 4 in
      let c = Circuit.create n in
      for _ = 1 to 40 do
        let a = Prng.int rng n in
        let b = (a + 1 + Prng.int rng (n - 1)) mod n in
        match Prng.int rng 9 with
        | 0 -> Circuit.add c (Gate.H a)
        | 1 -> Circuit.add c (Gate.X a)
        | 2 -> Circuit.add c (Gate.Rx (a, Prng.float rng 3.0))
        | 3 -> Circuit.add c (Gate.Rz (a, Prng.float rng 3.0))
        | 4 -> Circuit.add c (Gate.Cphase (a, b, Prng.float rng 3.0))
        | 5 -> Circuit.add c (Gate.Swap (a, b))
        | 6 -> Circuit.add c (Gate.Rzz (a, b, Prng.float rng 3.0))
        | 7 -> Circuit.add c Gate.Barrier
        | _ -> Circuit.add c (Gate.Cx (a, b))
      done;
      max_amp_diff (Sv.run c) (Sv.run_fused c) n < 1e-9)

let test_extract_logical () =
  (* 3 physical wires, 2 logical; swap logical 0 out to wire 2 *)
  let c = Circuit.create 3 in
  Circuit.add c (Gate.X 0);
  Circuit.add c (Gate.Swap (0, 2));
  let final = Mapping.identity ~logical:2 ~physical:3 in
  Mapping.apply_swap final 0 2;
  let sv = Sv.run c in
  let logical = Sv.extract_logical sv ~final in
  let probs = Sv.probabilities logical in
  Alcotest.(check (float 1e-12)) "logical |01> (bit0 set)" 1.0 probs.(1)

let test_depolarize () =
  let p = [| 1.0; 0.0; 0.0; 0.0 |] in
  let q = Channel.depolarize ~fidelity:0.5 p in
  Alcotest.(check (float 1e-12)) "mixed peak" 0.625 q.(0);
  Alcotest.(check (float 1e-12)) "mixed tail" 0.125 q.(1);
  Alcotest.(check (float 1e-9)) "still a distribution" 1.0 (Array.fold_left ( +. ) 0.0 q)

let test_tvd () =
  let p = [| 1.0; 0.0 |] and q = [| 0.0; 1.0 |] in
  Alcotest.(check (float 1e-12)) "max tvd" 1.0 (Channel.tvd p q);
  Alcotest.(check (float 1e-12)) "self tvd" 0.0 (Channel.tvd p p);
  Alcotest.(check (float 1e-12)) "symmetric" (Channel.tvd p q) (Channel.tvd q p)

let test_sample_counts () =
  let rng = Prng.create 3 in
  let p = [| 0.25; 0.75 |] in
  let emp = Channel.sample_counts rng ~shots:20000 p in
  Alcotest.(check bool) "empirical close" true (Channel.tvd p emp < 0.02)

let test_readout_flips () =
  let arch = Qcr_arch.Arch.line 2 in
  let noise = Qcr_arch.Noise.sampled ~seed:5 arch in
  let final = Mapping.identity ~logical:2 ~physical:2 in
  let p = [| 1.0; 0.0; 0.0; 0.0 |] in
  let q = Channel.with_readout noise ~final p in
  Alcotest.(check (float 1e-9)) "distribution preserved" 1.0 (Array.fold_left ( +. ) 0.0 q);
  Alcotest.(check bool) "mass leaks to flips" true (q.(0) < 1.0 && q.(0) > 0.8)

let test_maxcut_values () =
  let g = Generate.cycle 4 in
  Alcotest.(check int) "alternating cut" 4 (Maxcut.cut_value g 0b0101);
  Alcotest.(check int) "uniform cut" 0 (Maxcut.cut_value g 0b0000);
  Alcotest.(check int) "brute force" 4 (Maxcut.best_cut_brute_force g)

let test_expected_cut () =
  let g = Generate.cycle 4 in
  let dist = Array.make 16 0.0 in
  dist.(0b0101) <- 1.0;
  Alcotest.(check (float 1e-12)) "delta dist" 4.0 (Maxcut.expected_cut g dist);
  Alcotest.(check (float 1e-12)) "negated" (-4.0) (Maxcut.expectation_value g dist)

let test_nelder_mead_quadratic () =
  let f x = ((x.(0) -. 1.5) ** 2.0) +. ((x.(1) +. 0.5) ** 2.0) in
  let point, value, trace = Optimizer.nelder_mead ~max_rounds:120 ~f ~init:[| 0.0; 0.0 |] () in
  Alcotest.(check bool) "converged x" true (abs_float (point.(0) -. 1.5) < 0.01);
  Alcotest.(check bool) "converged y" true (abs_float (point.(1) +. 0.5) < 0.01);
  Alcotest.(check bool) "value small" true (value < 1e-3);
  (* best-so-far trace is monotone non-increasing *)
  let ok = ref true in
  Array.iteri
    (fun i v -> if i > 0 && v > trace.Optimizer.round_best.(i - 1) +. 1e-12 then ok := false)
    trace.Optimizer.round_best;
  Alcotest.(check bool) "monotone trace" true !ok

let test_qaoa_beats_random () =
  (* p=1 QAOA at decent angles must beat the uniform distribution *)
  let g = Generate.cycle 6 in
  let program =
    Qcr_circuit.Program.make g (Qcr_circuit.Program.Qaoa_maxcut { gamma = 0.6; beta = 0.4 })
  in
  let sv = Sv.run (Qcr_circuit.Program.logical_circuit program) in
  let qaoa_cut = Maxcut.expected_cut g (Sv.probabilities sv) in
  (* uniform expectation = |E| / 2 = 3 *)
  Alcotest.(check bool) "beats random guessing" true (qaoa_cut > 3.2)

let test_qaoa_evaluate_fidelity_effect () =
  let g = Generate.cycle 4 in
  let arch = Qcr_arch.Arch.line 4 in
  let noise = Qcr_arch.Noise.uniform arch ~cx_error:0.03 in
  let program =
    Qcr_circuit.Program.make g (Qcr_circuit.Program.Qaoa_maxcut { gamma = 0.6; beta = 0.4 })
  in
  let r = Qcr_core.Pipeline.run_exn (Qcr_core.Pipeline.Request.make ~noise arch program) in
  let eval_noisy =
    Qaoa.evaluate ~noise ~graph:g ~compiled:r.Qcr_core.Pipeline.circuit
      ~final:r.Qcr_core.Pipeline.final ()
  in
  let eval_ideal =
    Qaoa.evaluate ~graph:g ~compiled:r.Qcr_core.Pipeline.circuit
      ~final:r.Qcr_core.Pipeline.final ()
  in
  Alcotest.(check bool) "noise hurts energy" true (eval_noisy.Qaoa.energy > eval_ideal.Qaoa.energy);
  Alcotest.(check bool) "fidelity < 1" true (eval_noisy.Qaoa.fidelity < 1.0)


(* Lightcone analytic evaluator vs the exact statevector path. *)
let test_lightcone_triangles () =
  let g = Graph.of_edges 4 [ (0, 1); (0, 2); (1, 2); (1, 3) ] in
  Alcotest.(check int) "edge (0,1) has one triangle" 1 (Lightcone.triangles_through g 0 1);
  Alcotest.(check int) "edge (1,3) has none" 0 (Lightcone.triangles_through g 1 3)

let test_lightcone_noise_mixes_to_half () =
  (* as fidelity -> 0 the evaluation must approach -|E|/2 *)
  let g = Generate.erdos_renyi (Prng.create 3) ~n:8 ~density:0.4 in
  let e = Lightcone.energy g ~gamma:0.4 ~beta:0.35 in
  let m = float_of_int (Graph.edge_count g) in
  let mix fid = (fid *. e) +. ((1.0 -. fid) *. (-.m /. 2.0)) in
  Alcotest.(check (float 1e-12)) "fid 1 is ideal" e (mix 1.0);
  Alcotest.(check (float 1e-12)) "fid 0 is maximally mixed" (-.m /. 2.0) (mix 0.0)

(* Satellite property: closed-form p=1 energy equals the statevector
   energy (fused cost layer path) to 1e-9 on random graphs up to 12
   qubits, at random angles across the full period. *)
let prop_lightcone_matches_statevector =
  QCheck.Test.make ~name:"lightcone energy matches statevector within 1e-9" ~count:40
    QCheck.(pair (int_bound 100_000) (int_range 2 12))
    (fun (seed, n) ->
      let rng = Prng.create seed in
      let g = Generate.erdos_renyi rng ~n ~density:(0.15 +. Prng.float rng 0.7) in
      let gamma = -3.2 +. Prng.float rng 6.4 in
      let beta = -3.2 +. Prng.float rng 6.4 in
      let layer = Qaoa.cost_layer g in
      let sv = Qaoa.fused_state layer ~gamma ~beta in
      let e_sv = Maxcut.expectation_value_of_table layer.Qaoa.cut (Sv.probabilities sv) in
      abs_float (e_sv -. Lightcone.energy g ~gamma ~beta) < 1e-9)

let suite =
  [
    Alcotest.test_case "lightcone triangles" `Quick test_lightcone_triangles;
    Alcotest.test_case "lightcone noise mix" `Quick test_lightcone_noise_mixes_to_half;
    QCheck_alcotest.to_alcotest prop_lightcone_matches_statevector;
    Alcotest.test_case "initial state" `Quick test_initial_state;
    Alcotest.test_case "H uniform" `Quick test_h_uniform;
    Alcotest.test_case "bell state" `Quick test_bell_state;
    Alcotest.test_case "x flip" `Quick test_x_flip;
    Alcotest.test_case "swap amplitude" `Quick test_swap_moves_amplitude;
    Alcotest.test_case "cz = cp(pi)" `Quick test_cz_vs_cphase_pi;
    Alcotest.test_case "rzz diagonal" `Quick test_rzz_diagonal_phase;
    Alcotest.test_case "swap_interact equiv" `Quick test_swap_interact_equals_pair;
    QCheck_alcotest.to_alcotest prop_random_circuit_norm;
    QCheck_alcotest.to_alcotest prop_cut_table_matches_cut_value;
    QCheck_alcotest.to_alcotest prop_fused_layer_matches_per_edge;
    QCheck_alcotest.to_alcotest prop_run_fused_matches_run;
    Alcotest.test_case "extract logical" `Quick test_extract_logical;
    Alcotest.test_case "depolarize" `Quick test_depolarize;
    Alcotest.test_case "tvd" `Quick test_tvd;
    Alcotest.test_case "sample counts" `Quick test_sample_counts;
    Alcotest.test_case "readout flips" `Quick test_readout_flips;
    Alcotest.test_case "maxcut values" `Quick test_maxcut_values;
    Alcotest.test_case "expected cut" `Quick test_expected_cut;
    Alcotest.test_case "nelder-mead quadratic" `Quick test_nelder_mead_quadratic;
    Alcotest.test_case "qaoa beats random" `Quick test_qaoa_beats_random;
    Alcotest.test_case "qaoa fidelity effect" `Quick test_qaoa_evaluate_fidelity_effect;
  ]
