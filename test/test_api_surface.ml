(* Coverage for small API corners not exercised elsewhere. *)

module Graph = Qcr_graph.Graph
module Generate = Qcr_graph.Generate
module Paths = Qcr_graph.Paths
module Components = Qcr_graph.Components
module Circuit = Qcr_circuit.Circuit
module Gate = Qcr_circuit.Gate
module Mapping = Qcr_circuit.Mapping
module Arch = Qcr_arch.Arch
module Bitset = Qcr_util.Bitset
module Pqueue = Qcr_util.Pqueue
module Prng = Qcr_util.Prng
module Stats = Qcr_util.Stats

let test_two_qubit_gates () =
  let c = Circuit.create 4 in
  Circuit.add c (Gate.H 0);
  Circuit.add c (Gate.Cx (0, 1));
  Circuit.add c (Gate.Rz (2, 0.5));
  Circuit.add c (Gate.Swap (2, 3));
  Alcotest.(check (list (pair int int))) "pairs in order" [ (0, 1); (2, 3) ]
    (Circuit.two_qubit_gates c)

let test_component_labels () =
  let g = Graph.create 5 in
  Graph.add_edge g 0 1;
  Graph.add_edge g 3 4;
  let labels = Components.component_labels g in
  Alcotest.(check int) "same component" labels.(0) labels.(1);
  Alcotest.(check int) "same component" labels.(3) labels.(4);
  Alcotest.(check bool) "distinct components" true (labels.(0) <> labels.(3));
  Alcotest.(check bool) "singleton distinct" true
    (labels.(2) <> labels.(0) && labels.(2) <> labels.(3))

let test_eccentricity () =
  let g = Generate.path 5 in
  Alcotest.(check int) "end eccentricity" 4 (Paths.eccentricity g 0);
  Alcotest.(check int) "center eccentricity" 2 (Paths.eccentricity g 2)

let test_arch_coupled () =
  let a = Arch.line 4 in
  Alcotest.(check bool) "adjacent" true (Arch.coupled a 1 2);
  Alcotest.(check bool) "not adjacent" false (Arch.coupled a 0 3)

let test_density_edge_cases () =
  Alcotest.(check (float 1e-9)) "empty graph" 0.0 (Graph.density (Graph.create 0));
  Alcotest.(check (float 1e-9)) "single vertex" 0.0 (Graph.density (Graph.create 1));
  Alcotest.(check (float 1e-9)) "two disconnected" 0.0 (Graph.density (Graph.create 2))

let test_max_degree () =
  let g = Generate.star 6 in
  Alcotest.(check int) "star max degree" 5 (Graph.max_degree g);
  Alcotest.(check int) "empty max degree" 0 (Graph.max_degree (Graph.create 3))

let test_mapping_phys_array () =
  let m = Mapping.identity ~logical:2 ~physical:4 in
  Mapping.apply_swap m 0 3;
  let a = Mapping.phys_array m in
  Alcotest.(check int) "logical 0 moved" 3 a.(0);
  (* the returned array is a copy *)
  a.(0) <- 99;
  Alcotest.(check int) "copy semantics" 3 (Mapping.phys_of_log m 0)

let test_bitset_fold_and_key () =
  let b = Bitset.create 20 in
  Bitset.add b 3;
  Bitset.add b 17;
  Alcotest.(check int) "fold sum" 20 (Bitset.fold ( + ) b 0);
  let b' = Bitset.copy b in
  Alcotest.(check string) "hash key equal" (Bitset.hash_key b) (Bitset.hash_key b');
  Bitset.add b' 0;
  Alcotest.(check bool) "hash key differs" true (Bitset.hash_key b <> Bitset.hash_key b');
  Alcotest.(check bool) "equal detects" false (Bitset.equal b b')

let test_pqueue_clear () =
  let q = Pqueue.create () in
  Pqueue.push q ~prio:1 "x";
  Pqueue.clear q;
  Alcotest.(check bool) "cleared" true (Pqueue.is_empty q);
  Pqueue.push q ~prio:2 "y";
  Alcotest.(check (pair int string)) "usable after clear" (2, "y") (Pqueue.pop_exn q)

let test_prng_pick_and_copy () =
  let rng = Prng.create 8 in
  let snapshot = Prng.copy rng in
  let a = Prng.pick rng [| 10; 20; 30 |] in
  let b = Prng.pick snapshot [| 10; 20; 30 |] in
  Alcotest.(check int) "copy replays the stream" a b;
  Alcotest.(check bool) "picked element" true (List.mem a [ 10; 20; 30 ])

let test_stats_mean_int () =
  Alcotest.(check (float 1e-9)) "mean_int" 2.0 (Stats.mean_int [| 1; 2; 3 |])

let test_circuit_layers_skip_barrier () =
  let c = Circuit.create 2 in
  Circuit.add c (Gate.Cx (0, 1));
  Circuit.add c Gate.Barrier;
  Circuit.add c (Gate.Measure 0);
  let layers = Circuit.layers c in
  (* barrier dropped; cx and measure in separate layers *)
  Alcotest.(check int) "two layers" 2 (List.length layers)

let test_graph_pp_and_gate_pp () =
  let g = Generate.cycle 4 in
  let s = Format.asprintf "%a" Graph.pp g in
  Alcotest.(check bool) "graph pp" true (String.length s > 0);
  Alcotest.(check string) "gate to_string" "cx q0,q1" (Gate.to_string (Gate.Cx (0, 1)))

(* ---------- service wire format (qcheck round-trips) ---------- *)

module Program = Qcr_circuit.Program
module Pipeline = Qcr_core.Pipeline
module Pool = Qcr_par.Pool
module Clock = Qcr_obs.Clock
module Request = Qcr_service.Compile_request
module Reply = Qcr_service.Compile_reply
module Service = Qcr_service.Service

(* Ids with quotes, backslashes and control characters exercise the JSON
   string escaper both ways. *)
let id_gen = QCheck.Gen.oneofl [ ""; "job-1"; "a\"b"; "back\\slash"; "tab\tnewline\n"; "sp ace" ]

let angle_gen = QCheck.Gen.float_range (-7.0) 7.0

let interaction_gen =
  QCheck.Gen.(
    oneof
      [
        map2 (fun gamma beta -> Program.Qaoa_maxcut { gamma; beta }) angle_gen angle_gen;
        map2 (fun gamma beta -> Program.Qaoa_level { gamma; beta }) angle_gen angle_gen;
        map (fun theta -> Program.Two_local { theta }) angle_gen;
        return Program.Bare_cz;
      ])

let request_gen =
  QCheck.Gen.(
    int_range 2 8 >>= fun qubits ->
    let vertex = int_range 0 (qubits - 1) in
    list_size (int_range 0 8) (pair vertex vertex) >>= fun edges ->
    id_gen >>= fun id ->
    int_range qubits (qubits + 6) >>= fun arch_size ->
    oneofl [ Qcr_arch.Arch.Line; Grid; Grid3d; Sycamore; Heavy_hex; Hexagon ] >>= fun arch_kind ->
    interaction_gen >>= fun interaction ->
    oneofl [ Request.Ours; Request.Greedy; Request.Ata; Request.Portfolio ] >>= fun mode ->
    opt (float_range 0.0 2.0) >>= fun alpha ->
    opt (int_range 0 1000) >>= fun noise_seed ->
    bool >>= fun trace ->
    map
      (fun deadline_s ->
        Request.make ~id ~arch_size ~interaction ~mode ?alpha ?noise_seed ?deadline_s ~trace
          ~arch_kind ~qubits ~edges ())
      (opt (float_range 0.001 60.0)))

let request_arb =
  QCheck.make request_gen ~print:(fun r -> Qcr_obs.Json.to_string (Request.to_json r))

let prop_request_json_roundtrip =
  QCheck.Test.make ~name:"Compile_request JSON round-trips" ~count:200 request_arb (fun r ->
      Request.of_json (Request.to_json r) = Ok r)

let metrics_gen =
  QCheck.Gen.(
    int_range 0 500 >>= fun depth ->
    int_range 0 500 >>= fun cx ->
    int_range 0 200 >>= fun swap_count ->
    float_range (-50.0) 0.0 >>= fun log_fidelity ->
    oneofl [ "greedy"; "ata"; "hybrid@3" ] >>= fun strategy ->
    map
      (fun circuit_digest ->
        { Reply.depth; cx; swap_count; log_fidelity; strategy; circuit_digest })
      (oneofl [ "0123456789abcdef"; "cafebabecafebabe" ]))

let reply_gen =
  QCheck.Gen.(
    id_gen >>= fun id ->
    oneofl [ "deadbeefdeadbeef"; "" ] >>= fun key ->
    oneofl [ Request.Ours; Request.Greedy; Request.Ata; Request.Portfolio ]
    >>= fun requested_mode ->
    oneof
      [
        map2
          (fun mode metrics -> Reply.Compiled { mode; metrics })
          (oneofl [ Request.Ours; Request.Greedy; Request.Ata; Request.Portfolio ])
          metrics_gen;
        map (fun d -> Reply.Failed (Pipeline.Timeout { deadline_s = d })) (float_range 0.001 60.0);
        map (fun m -> Reply.Failed (Pipeline.Invalid_request m)) id_gen;
        map (fun m -> Reply.Failed (Pipeline.Internal m)) id_gen;
        map2
          (fun queued limit -> Reply.Failed (Pipeline.Overloaded { queued; limit }))
          (int_range 0 256) (int_range 1 256);
        return (Reply.Failed Pipeline.Canceled);
      ]
    >>= fun outcome ->
    bool >>= fun cached ->
    (let phase_gen =
       oneofl [ "cache"; "compile"; "validate" ] >>= fun p_phase ->
       oneofl [ "hit"; "miss"; "ours"; "greedy"; "portfolio" ] >>= fun p_detail ->
       oneofl [ "ok"; "discarded"; "breaker_open"; "internal" ] >>= fun p_outcome ->
       int_range 0 3 >>= fun p_retries ->
       map
         (fun p_ms -> { Reply.p_phase; p_detail; p_outcome; p_retries; p_ms })
         (float_range 0.0 100.0)
     in
     opt (list_size (int_range 0 4) phase_gen))
    >>= fun trace ->
    map
      (fun compile_ms -> { Reply.id; key; requested_mode; outcome; cached; compile_ms; trace })
      (float_range 0.0 10000.0))

let reply_arb = QCheck.make reply_gen ~print:(fun r -> Qcr_obs.Json.to_string (Reply.to_json r))

let prop_reply_json_roundtrip =
  QCheck.Test.make ~name:"Compile_reply JSON round-trips" ~count:200 reply_arb (fun r ->
      Reply.of_json (Reply.to_json r) = Ok r)

(* The content-addressed key is a pure function of the request: resizing
   the default pool (QCR_DOMAINS 1 vs 4) must not change it, and neither
   may edge order or orientation. *)
let prop_cache_key_pool_independent =
  QCheck.Test.make ~name:"cache key stable across pool sizes and edge order" ~count:100
    request_arb (fun r ->
      let at domains =
        let old = Pool.default_domain_count () in
        Pool.set_default_domains domains;
        Fun.protect
          ~finally:(fun () -> Pool.set_default_domains old)
          (fun () -> Request.cache_key r)
      in
      let flipped = { r with Request.edges = List.rev_map (fun (u, v) -> (v, u)) r.Request.edges } in
      at 1 = at 4 && Request.cache_key flipped = Request.cache_key r)

(* With a fake clock that jumps a full second on every reading, every
   tier misses admission, so a deadlined request must come back as a
   typed Timeout reply — never an exception across the API boundary. *)
let test_service_deadline_fake_clock () =
  let _fake, clock = Clock.fake ~auto_advance:1.0 () in
  let s = Service.create ~clock () in
  let req =
    Request.make ~mode:Request.Ours ~deadline_s:0.5 ~arch_kind:Qcr_arch.Arch.Line ~qubits:3
      ~edges:[ (0, 1); (1, 2) ] ()
  in
  let r = Service.submit s req in
  match r.Reply.outcome with
  | Reply.Failed (Pipeline.Timeout { deadline_s }) ->
      Alcotest.(check (float 1e-9)) "deadline echoed" 0.5 deadline_s
  | _ -> Alcotest.fail "expected a typed Timeout reply"

let suite =
  [
    Alcotest.test_case "two_qubit_gates" `Quick test_two_qubit_gates;
    Alcotest.test_case "component labels" `Quick test_component_labels;
    Alcotest.test_case "eccentricity" `Quick test_eccentricity;
    Alcotest.test_case "arch coupled" `Quick test_arch_coupled;
    Alcotest.test_case "density edges" `Quick test_density_edge_cases;
    Alcotest.test_case "max degree" `Quick test_max_degree;
    Alcotest.test_case "mapping phys_array" `Quick test_mapping_phys_array;
    Alcotest.test_case "bitset fold/key" `Quick test_bitset_fold_and_key;
    Alcotest.test_case "pqueue clear" `Quick test_pqueue_clear;
    Alcotest.test_case "prng pick/copy" `Quick test_prng_pick_and_copy;
    Alcotest.test_case "stats mean_int" `Quick test_stats_mean_int;
    Alcotest.test_case "layers skip barrier" `Quick test_circuit_layers_skip_barrier;
    Alcotest.test_case "pp functions" `Quick test_graph_pp_and_gate_pp;
    QCheck_alcotest.to_alcotest prop_request_json_roundtrip;
    QCheck_alcotest.to_alcotest prop_reply_json_roundtrip;
    QCheck_alcotest.to_alcotest prop_cache_key_pool_independent;
    Alcotest.test_case "deadline with fake clock" `Quick test_service_deadline_fake_clock;
  ]
