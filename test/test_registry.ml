(* Tests for the metrics registry and the event log: bucket-quantile
   error bound (qcheck property against exact quantiles), sketch merge
   laws mirroring Histogram.merge, meter/gauge/probe snapshots, JSON and
   Prometheus exposition, and the bounded slow/error channels. *)

module Obs = Qcr_obs.Obs
module Clock = Qcr_obs.Clock
module Registry = Qcr_obs.Registry
module Sketch = Qcr_obs.Registry.Sketch
module Eventlog = Qcr_obs.Eventlog
module Json = Qcr_obs.Json

(* Same discipline as test_obs: the sink (and the registry's derived
   state, cleared by Obs.reset via its hook) is global — always leave it
   disabled and empty. *)
let with_sink ?clock f =
  Obs.enable ?clock ();
  Obs.reset ();
  Fun.protect f ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ();
      Obs.set_clock Clock.wall)

(* Build a histogram summary directly (the record is public), bypassing
   the global sink so qcheck properties need no enable/reset churn. *)
let summary_of values =
  let buckets = Array.make Obs.Histogram.bucket_count 0 in
  List.iter
    (fun v ->
      let b = Obs.Histogram.bucket_of v in
      buckets.(b) <- buckets.(b) + 1)
    values;
  {
    Obs.Histogram.count = List.length values;
    sum = List.fold_left ( +. ) 0.0 values;
    min = List.fold_left Float.min infinity values;
    max = List.fold_left Float.max neg_infinity values;
    buckets;
  }

(* The documented rank: clamp(ceil(q*n), 1, n), 1-indexed into the
   sorted sample — the same definition Registry.quantile uses. *)
let exact_quantile values q =
  let a = Array.of_list values in
  Array.sort compare a;
  let n = Array.length a in
  let rank = max 1 (min n (int_of_float (Float.ceil (q *. float_of_int n)))) in
  a.(rank - 1)

(* ---------- bucket quantiles: documented error bound ---------- *)

let test_quantile_empty () =
  Alcotest.(check bool) "empty is None" true
    (Registry.quantile Obs.Histogram.empty_summary 0.5 = None)

let test_quantile_exact_cases () =
  (* all values in one bucket: the estimate is clamped into [min, max] *)
  let s = summary_of [ 1.0; 1.0; 1.0 ] in
  (match Registry.quantile s 0.5 with
  | Some v -> Alcotest.(check (float 1e-9)) "single bucket clamps to min/max" 1.0 v
  | None -> Alcotest.fail "expected Some");
  let s2 = summary_of [ 1.0; 1000.0 ] in
  (match Registry.quantile s2 0.99 with
  | Some v ->
      Alcotest.(check bool) "p99 lands in the top bucket" true (v > 500.0 && v <= 1000.0)
  | None -> Alcotest.fail "expected Some")

(* positive samples spanning the table range, far from the clamp edges *)
let gen_positive_samples =
  let open QCheck.Gen in
  let gen_v =
    map2 (fun m e -> Float.ldexp (1.0 +. m) e) (float_bound_exclusive 1.0) (int_range (-20) 20)
  in
  list_size (int_range 1 100) gen_v

let prop_bucket_quantile_error =
  QCheck.Test.make ~name:"bucket quantile within documented relative error" ~count:300
    (QCheck.make
       ~print:(fun (vs, q) ->
         Printf.sprintf "q=%g [%s]" q (String.concat ";" (List.map string_of_float vs)))
       QCheck.Gen.(pair gen_positive_samples (float_range 0.001 1.0)))
    (fun (values, q) ->
      let s = summary_of values in
      match Registry.quantile s q with
      | None -> false
      | Some est ->
          let exact = exact_quantile values q in
          abs_float (est -. exact) /. exact <= Registry.quantile_relative_error +. 1e-9)

(* ---------- sketch: merge laws and tail exactness ---------- *)

let sketch_summary ?cap values =
  let t = Sketch.create ?cap () in
  List.iter (Sketch.observe t) values;
  Sketch.summary t

let sketch_eq a b =
  a.Sketch.s_count = b.Sketch.s_count
  && a.Sketch.s_cap = b.Sketch.s_cap
  && a.Sketch.s_tail = b.Sketch.s_tail

(* floats with exact binary representations, so sorting ties are stable
   under structural equality *)
let gen_values =
  QCheck.Gen.(list_size (int_bound 20) (map (fun a -> float_of_int a /. 8.0) (int_range (-800) 800)))

let prop_sketch_merge_laws =
  QCheck.Test.make ~name:"sketch merge is associative/commutative with identity" ~count:300
    (QCheck.make
       ~print:(fun (a, b, c) ->
         let show l = "[" ^ String.concat ";" (List.map string_of_float l) ^ "]" in
         show a ^ " " ^ show b ^ " " ^ show c)
       QCheck.Gen.(triple gen_values gen_values gen_values))
    (fun (la, lb, lc) ->
      let cap = 4 in
      let a = sketch_summary ~cap la
      and b = sketch_summary ~cap lb
      and c = sketch_summary ~cap lc in
      let open Sketch in
      sketch_eq (merge (merge a b) c) (merge a (merge b c))
      && sketch_eq (merge a b) (merge b a)
      && sketch_eq (merge (empty_summary ~cap ()) a) a
      && sketch_eq (merge a (empty_summary ~cap ())) a
      (* merging a partition reproduces observing everything at once *)
      && sketch_eq (merge a b) (sketch_summary ~cap (la @ lb)))

let prop_sketch_tail_exact =
  QCheck.Test.make ~name:"sketch quantiles exact while n <= cap" ~count:300
    (QCheck.make
       ~print:(fun (vs, q) ->
         Printf.sprintf "q=%g [%s]" q (String.concat ";" (List.map string_of_float vs)))
       QCheck.Gen.(
         pair
           (list_size (int_range 1 20) (map (fun a -> float_of_int a /. 8.0) (int_range 0 800)))
           (float_range 0.001 1.0)))
    (fun (values, q) ->
      (* default cap 128 > 20, so the whole sample is retained *)
      let s = sketch_summary values in
      Sketch.quantile s q = Some (exact_quantile values q))

let test_sketch_truncation () =
  let s = sketch_summary ~cap:3 [ 1.0; 5.0; 3.0; 9.0; 7.0 ] in
  Alcotest.(check int) "count sees everything" 5 s.Sketch.s_count;
  Alcotest.(check (array (float 0.0))) "tail keeps the top 3" [| 9.0; 7.0; 5.0 |] s.Sketch.s_tail;
  (* p99 rank 5 from-top 1 is exact; p50 rank 3 from-top 3 is exact;
     p20 rank 1 from-top 5 falls off the tail *)
  Alcotest.(check bool) "p99 exact" true (Sketch.quantile s 0.99 = Some 9.0);
  Alcotest.(check bool) "p50 exact" true (Sketch.quantile s 0.5 = Some 5.0);
  Alcotest.(check bool) "p20 falls back" true (Sketch.quantile s 0.2 = None);
  Alcotest.(check bool) "NaN ignored" true
    ((sketch_summary [ nan; 2.0 ]).Sketch.s_count = 1)

(* ---------- meters, gauges, probes ---------- *)

let test_meter_snapshot () =
  let _, clock = Clock.fake ~start:1000.0 () in
  with_sink ~clock (fun () ->
      let m = Registry.meter ~labels:[ ("tier", "t0") ] "t.reg.lat" in
      Alcotest.(check bool) "interned" true (m == Registry.meter ~labels:[ ("tier", "t0") ] "t.reg.lat");
      for i = 1 to 100 do
        Registry.observe m (float_of_int i)
      done;
      let snap = Registry.snapshot () in
      let st =
        List.find
          (fun st -> st.Registry.ms_name = "t.reg.lat" && st.Registry.ms_labels = [ ("tier", "t0") ])
          snap.Registry.sn_meters
      in
      Alcotest.(check int) "count" 100 st.Registry.ms_summary.Obs.Histogram.count;
      (* 100 <= sketch cap, so the quantiles are exact *)
      Alcotest.(check bool) "p50" true (st.Registry.ms_p50 = Some 50.0);
      Alcotest.(check bool) "p90" true (st.Registry.ms_p90 = Some 90.0);
      Alcotest.(check bool) "p99" true (st.Registry.ms_p99 = Some 99.0);
      (* all observations land in one fake-clock second of the window *)
      match st.Registry.ms_rate_1m with
      | Some r -> Alcotest.(check (float 1e-9)) "rate" (100.0 /. 60.0) r
      | None -> Alcotest.fail "meter rate must be Some")

let test_meter_disabled_sink () =
  Obs.disable ();
  Obs.reset ();
  let m = Registry.meter "t.reg.off" in
  Registry.observe m 5.0;
  let snap = Registry.snapshot () in
  let st = List.find (fun st -> st.Registry.ms_name = "t.reg.off") snap.Registry.sn_meters in
  Alcotest.(check int) "nothing recorded" 0 st.Registry.ms_summary.Obs.Histogram.count;
  Obs.reset ()

let test_gauges_and_probes () =
  with_sink (fun () ->
      let g = Registry.gauge ~labels:[ ("k", "v") ] "t.reg.gauge" in
      Registry.set_gauge g 42.0;
      Registry.register_probe "t.reg.probe" (fun () -> 7.0);
      (* re-registering replaces, so per-instance services can re-register *)
      Registry.register_probe "t.reg.probe" (fun () -> 8.0);
      Registry.register_probe "t.reg.raising" (fun () -> failwith "boom");
      let snap = Registry.snapshot () in
      let find name =
        List.find_opt (fun gs -> gs.Registry.gs_name = name) snap.Registry.sn_gauges
      in
      (match find "t.reg.gauge" with
      | Some gs -> Alcotest.(check (float 0.0)) "gauge value" 42.0 gs.Registry.gs_value
      | None -> Alcotest.fail "gauge missing");
      (match find "t.reg.probe" with
      | Some gs -> Alcotest.(check (float 0.0)) "probe replaced" 8.0 gs.Registry.gs_value
      | None -> Alcotest.fail "probe missing");
      Alcotest.(check bool) "raising probe omitted" true (find "t.reg.raising" = None);
      (* Obs.reset clears derived registry state through its hook *)
      Obs.reset ();
      match
        List.find_opt (fun gs -> gs.Registry.gs_name = "t.reg.gauge")
          (Registry.snapshot ()).Registry.sn_gauges
      with
      | Some gs -> Alcotest.(check (float 0.0)) "gauge zeroed by reset" 0.0 gs.Registry.gs_value
      | None -> Alcotest.fail "gauge missing after reset")

(* ---------- exposition ---------- *)

let test_json_exposition () =
  with_sink (fun () ->
      ignore (Registry.meter "t.reg.emptymeter");
      Obs.incr (Obs.counter "t.reg.counter");
      let s = Json.to_string (Registry.to_json (Registry.snapshot ())) in
      (* empty meters must serialize their infinities as null, never as
         tokens our strict parser rejects *)
      (match Json.of_string s with
      | Ok j -> (
          Alcotest.(check bool) "schema" true
            (Json.member "schema" j = Some (Json.Str Registry.schema));
          let meters = match Json.member "meters" j with Some (Json.Arr l) -> l | _ -> [] in
          match
            List.find_opt (fun m -> Json.member "name" m = Some (Json.Str "t.reg.emptymeter")) meters
          with
          | Some m ->
              Alcotest.(check bool) "empty min is null" true (Json.member "min" m = Some Json.Null);
              Alcotest.(check bool) "empty max is null" true (Json.member "max" m = Some Json.Null);
              Alcotest.(check bool) "empty p50 is null" true (Json.member "p50" m = Some Json.Null)
          | None -> Alcotest.fail "empty meter missing from exposition")
      | Error e -> Alcotest.failf "exposition does not reparse: %s" e))

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

let test_prometheus_exposition () =
  with_sink (fun () ->
      let m = Registry.meter ~labels:[ ("tier", "ours") ] "t.reg.prom_ms" in
      List.iter (Registry.observe m) [ 1.0; 2.0; 3.0; 4.0 ];
      Obs.add (Obs.counter "t.reg.prom_counter") 3;
      Registry.set_gauge (Registry.gauge "t.reg.prom_gauge") 1.5;
      let text = Registry.prometheus (Registry.snapshot ()) in
      List.iter
        (fun needle ->
          Alcotest.(check bool) (Printf.sprintf "contains %S" needle) true (contains text needle))
        [
          "# TYPE qcr_t_reg_prom_counter counter";
          "qcr_t_reg_prom_counter 3\n";
          "# TYPE qcr_t_reg_prom_gauge gauge";
          "qcr_t_reg_prom_gauge 1.5\n";
          "# TYPE qcr_t_reg_prom_ms summary";
          "qcr_t_reg_prom_ms{tier=\"ours\",quantile=\"0.5\"} 2\n";
          "qcr_t_reg_prom_ms{tier=\"ours\",quantile=\"0.99\"} 4\n";
          "qcr_t_reg_prom_ms_sum{tier=\"ours\"} 10\n";
          "qcr_t_reg_prom_ms_count{tier=\"ours\"} 4\n";
        ])

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_write_snapshot_file () =
  with_sink (fun () ->
      Obs.incr (Obs.counter "t.reg.filecounter");
      let path = Filename.temp_file "qcr_metrics" ".json" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          (match Registry.write_snapshot_file path with
          | Ok () -> ()
          | Error e -> Alcotest.failf "write failed: %s" e);
          match Json.of_string (String.trim (read_file path)) with
          | Ok j ->
              Alcotest.(check bool) "schema present" true
                (Json.member "schema" j = Some (Json.Str Registry.schema))
          | Error e -> Alcotest.failf "snapshot file invalid: %s" e);
      match Registry.write_atomic "/nonexistent-dir/x.json" "{}" with
      | Ok () -> Alcotest.fail "write into missing dir must fail"
      | Error _ -> ())

(* ---------- event log ---------- *)

let test_eventlog_slow_ring () =
  let _, clock = Clock.fake ~auto_advance:1.0 () in
  with_sink ~clock (fun () ->
      let log = Eventlog.create ~slow_capacity:3 ~slow_threshold_ms:10.0 () in
      Eventlog.record_slow log ~id:"fast" ~ms:10.0 [];
      Alcotest.(check int) "at-threshold not recorded" 0 (List.length (Eventlog.slow_events log));
      for i = 11 to 15 do
        Eventlog.record_slow log ~id:(Printf.sprintf "r%d" i) ~ms:(float_of_int i) []
      done;
      let ids = List.map (fun ev -> ev.Eventlog.ev_id) (Eventlog.slow_events log) in
      Alcotest.(check (list string)) "drop-oldest, oldest first" [ "r13"; "r14"; "r15" ] ids;
      Alcotest.(check int) "dropped count" 2 (Eventlog.slow_dropped log);
      (match Eventlog.slow_events log with
      | ev :: _ ->
          Alcotest.(check bool) "ms stored as first field" true
            (List.assoc_opt "ms" ev.Eventlog.ev_fields = Some (Json.Num 13.0))
      | [] -> Alcotest.fail "expected events");
      Alcotest.check_raises "capacity validated"
        (Invalid_argument "Qcr_obs.Eventlog.create: slow_capacity must be >= 1") (fun () ->
          ignore (Eventlog.create ~slow_capacity:0 ())))

let test_eventlog_error_sampling () =
  with_sink (fun () ->
      let log = Eventlog.create ~error_capacity:4 () in
      for i = 1 to 100 do
        Eventlog.record_error log ~id:(Printf.sprintf "e%d" i) []
      done;
      Alcotest.(check int) "every error counted" 100 (Eventlog.errors_seen log);
      let kept = Eventlog.error_events log in
      Alcotest.(check bool) "bounded" true (List.length kept <= 4 && List.length kept >= 1);
      (* the first error is always kept: strides only ever start there *)
      (match kept with
      | ev :: _ -> Alcotest.(check string) "first error retained" "e1" ev.Eventlog.ev_id
      | [] -> Alcotest.fail "expected kept errors");
      (* samples stay in arrival order *)
      let nums =
        List.map
          (fun ev -> int_of_string (String.sub ev.Eventlog.ev_id 1 (String.length ev.Eventlog.ev_id - 1)))
          kept
      in
      Alcotest.(check bool) "monotone sample" true (List.sort compare nums = nums))

let test_eventlog_write () =
  let _, clock = Clock.fake ~auto_advance:0.5 () in
  with_sink ~clock (fun () ->
      let log = Eventlog.create ~slow_threshold_ms:1.0 () in
      Eventlog.record_slow log ~id:"s1" ~ms:5.0 [ ("status", Json.Str "ok") ];
      Eventlog.record_error log ~id:"x1" [ ("error_kind", Json.Str "internal") ];
      let path = Filename.temp_file "qcr_eventlog" ".jsonl" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          (match Eventlog.write log path with
          | Ok n -> Alcotest.(check int) "event lines written" 2 n
          | Error e -> Alcotest.failf "write failed: %s" e);
          let lines =
            String.split_on_char '\n' (String.trim (read_file path))
          in
          Alcotest.(check int) "header + 2 events" 3 (List.length lines);
          List.iteri
            (fun i line ->
              match Json.of_string line with
              | Ok j ->
                  if i = 0 then
                    Alcotest.(check bool) "header schema" true
                      (Json.member "schema" j = Some (Json.Str Eventlog.schema))
                  else
                    Alcotest.(check bool) "event has kind" true (Json.member "kind" j <> None)
              | Error e -> Alcotest.failf "line %d invalid: %s" i e)
            lines))

let suite =
  [
    Alcotest.test_case "quantile of empty summary" `Quick test_quantile_empty;
    Alcotest.test_case "quantile exact cases" `Quick test_quantile_exact_cases;
    QCheck_alcotest.to_alcotest prop_bucket_quantile_error;
    QCheck_alcotest.to_alcotest prop_sketch_merge_laws;
    QCheck_alcotest.to_alcotest prop_sketch_tail_exact;
    Alcotest.test_case "sketch truncation keeps the top" `Quick test_sketch_truncation;
    Alcotest.test_case "meter snapshot quantiles and rate" `Quick test_meter_snapshot;
    Alcotest.test_case "meter under disabled sink" `Quick test_meter_disabled_sink;
    Alcotest.test_case "gauges and probes" `Quick test_gauges_and_probes;
    Alcotest.test_case "json exposition" `Quick test_json_exposition;
    Alcotest.test_case "prometheus exposition" `Quick test_prometheus_exposition;
    Alcotest.test_case "snapshot file write" `Quick test_write_snapshot_file;
    Alcotest.test_case "eventlog slow ring" `Quick test_eventlog_slow_ring;
    Alcotest.test_case "eventlog error sampling" `Quick test_eventlog_error_sampling;
    Alcotest.test_case "eventlog jsonl write" `Quick test_eventlog_write;
  ]
