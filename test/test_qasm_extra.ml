module Circuit = Qcr_circuit.Circuit
module Gate = Qcr_circuit.Gate
module Qasm = Qcr_circuit.Qasm

let contains s needle =
  let nl = String.length needle and sl = String.length s in
  let rec scan i = i + nl <= sl && (String.sub s i nl = needle || scan (i + 1)) in
  scan 0

let test_header_registers () =
  let c = Circuit.create 5 in
  let s = Qasm.to_string c in
  Alcotest.(check bool) "qreg" true (contains s "qreg q[5];");
  Alcotest.(check bool) "creg" true (contains s "creg c[5];")

let test_all_gate_lowering () =
  let c = Circuit.create 3 in
  Circuit.add c (Gate.H 0);
  Circuit.add c (Gate.X 1);
  Circuit.add c (Gate.Rx (0, 0.5));
  Circuit.add c (Gate.Rz (1, 0.25));
  Circuit.add c (Gate.Cx (0, 1));
  Circuit.add c (Gate.Cz (1, 2));
  Circuit.add c (Gate.Cphase (0, 2, 0.125));
  Circuit.add c (Gate.Rzz (0, 1, 0.375));
  Circuit.add c (Gate.Swap (1, 2));
  Circuit.add c (Gate.Swap_rzz (0, 1, 0.75));
  Circuit.add c (Gate.Measure 0);
  Circuit.add c Gate.Barrier;
  let s = Qasm.to_string c in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "contains %s" needle) true (contains s needle))
    [
      "h q[0];"; "x q[1];"; "rx(0.5) q[0];"; "rz(0.25) q[1];"; "cx q[0],q[1];";
      "cz q[1],q[2];"; "cp(0.125) q[0],q[2];"; "swap q[1],q[2];";
      "measure q[0] -> c[0];"; "barrier q;";
    ];
  (* rzz lowers to cx-rz-cx *)
  Alcotest.(check bool) "rzz lowered" true (contains s "rz(0.375) q[1];")

(* ---- import ---- *)

let test_roundtrip_simple () =
  let c = Circuit.create 3 in
  Circuit.add c (Gate.H 0);
  Circuit.add c (Gate.Rx (1, 0.5));
  Circuit.add c (Gate.Rz (2, -1.25));
  Circuit.add c (Gate.Cx (0, 1));
  Circuit.add c (Gate.Cz (1, 2));
  Circuit.add c (Gate.Cphase (0, 2, 0.75));
  Circuit.add c (Gate.Swap (0, 1));
  Circuit.add c (Gate.Measure 2);
  match Qasm.of_string (Qasm.to_string c) with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok parsed ->
      Alcotest.(check int) "qubits" 3 (Circuit.qubit_count parsed);
      Alcotest.(check int) "gate count" (Circuit.gate_count c) (Circuit.gate_count parsed);
      (* semantics preserved (measure/barrier are no-ops in sim) *)
      let f =
        Qcr_sim.Statevector.fidelity (Qcr_sim.Statevector.run c)
          (Qcr_sim.Statevector.run parsed)
      in
      Alcotest.(check bool) "roundtrip semantics" true (f > 1.0 -. 1e-9)

let test_roundtrip_lowered_fused () =
  (* fused gates export as primitive sequences; the parse must still be
     semantically identical *)
  let c = Circuit.create 2 in
  Circuit.add c (Gate.H 0);
  Circuit.add c (Gate.H 1);
  Circuit.add c (Gate.Swap_interact (0, 1, 0.625));
  Circuit.add c (Gate.Swap_rzz (1, 0, 0.3));
  Circuit.add c (Gate.Rzz (0, 1, 1.5));
  match Qasm.of_string (Qasm.to_string c) with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok parsed ->
      let f =
        Qcr_sim.Statevector.fidelity (Qcr_sim.Statevector.run c)
          (Qcr_sim.Statevector.run parsed)
      in
      Alcotest.(check bool) "fused roundtrip semantics" true (f > 1.0 -. 1e-9)

let test_parse_compiled_output () =
  let rng = Qcr_util.Prng.create 3 in
  let g = Qcr_graph.Generate.erdos_renyi rng ~n:10 ~density:0.4 in
  let arch = Qcr_arch.Arch.smallest_for Qcr_arch.Arch.Heavy_hex 10 in
  let program =
    Qcr_circuit.Program.make g
      (Qcr_circuit.Program.Qaoa_maxcut { gamma = 0.4; beta = 0.35 })
  in
  let r = Qcr_core.Pipeline.run_exn (Qcr_core.Pipeline.Request.make arch program) in
  match Qasm.of_string (Qasm.to_string r.Qcr_core.Pipeline.circuit) with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok parsed ->
      let f =
        Qcr_sim.Statevector.fidelity
          (Qcr_sim.Statevector.run r.Qcr_core.Pipeline.circuit)
          (Qcr_sim.Statevector.run parsed)
      in
      Alcotest.(check bool) "compiled circuit roundtrip" true (f > 1.0 -. 1e-9)

let test_parse_errors () =
  (match Qasm.of_string "h q[0];" with
  | Error e -> Alcotest.(check bool) "no qreg" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "expected error");
  (match Qasm.of_string "qreg q[2];
frobnicate q[0];" with
  | Error e -> Alcotest.(check bool) "unknown gate" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "expected error");
  match Qasm.of_string "qreg q[2];
cx q[0];" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected arity error"

let test_parse_comments_and_pi () =
  let src = "OPENQASM 2.0;
qreg q[2]; // register
// a comment line
rz(pi/2) q[0];
cp(-pi) q[0],q[1];
" in
  match Qasm.of_string src with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok c -> Alcotest.(check int) "two gates" 2 (Circuit.gate_count c)

let test_write_file () =
  let c = Circuit.create 2 in
  Circuit.add c (Gate.Cx (0, 1));
  let path = Filename.temp_file "qcr_test" ".qasm" in
  Qasm.write_file path c;
  let ic = open_in path in
  let len = in_channel_length ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "file non-empty" true (len > 30)

let suite =
  [
    Alcotest.test_case "header/registers" `Quick test_header_registers;
    Alcotest.test_case "all gate lowering" `Quick test_all_gate_lowering;
    Alcotest.test_case "write file" `Quick test_write_file;
    Alcotest.test_case "roundtrip simple" `Quick test_roundtrip_simple;
    Alcotest.test_case "roundtrip fused" `Quick test_roundtrip_lowered_fused;
    Alcotest.test_case "roundtrip compiled" `Quick test_parse_compiled_output;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "comments and pi" `Quick test_parse_comments_and_pi;
  ]
