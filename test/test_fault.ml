(* Deterministic fault injection and the robustness it buys: spec
   grammar round-trips, zero-cost disarmed probes, seeded determinism,
   pool worker supervision, service retries / circuit breakers / cache
   digest validation, the hardened JSON parser, and the chaos batch
   invariants the [bench chaos] soak gates on.

   Every test that arms a spec disarms in a [Fun.protect] finally: the
   registry is global, and no fault may leak into later tests. *)

module Fault = Qcr_fault.Fault
module Json = Qcr_obs.Json
module Clock = Qcr_obs.Clock
module Pool = Qcr_par.Pool
module Program = Qcr_circuit.Program
module Pipeline = Qcr_core.Pipeline
module Request = Qcr_service.Compile_request
module Reply = Qcr_service.Compile_reply
module Service = Qcr_service.Service

let with_faults spec_string f =
  (match Fault.spec_of_string spec_string with
  | Ok spec -> Fault.arm spec
  | Error e -> Alcotest.fail ("bad spec in test: " ^ e));
  Fun.protect ~finally:Fault.disarm f

(* ---------- spec grammar ---------- *)

let test_spec_roundtrip () =
  let cases =
    [
      "seed=7,pool.worker:crash";
      "seed=0,cache.get:corrupt:nth=3";
      "seed=42,service.tier:delay=0.001:every=2,clock.read:crash:p=0.25";
      "seed=1,json.decode:corrupt:always";
    ]
  in
  List.iter
    (fun s ->
      match Fault.spec_of_string s with
      | Error e -> Alcotest.fail (Printf.sprintf "%s: %s" s e)
      | Ok spec -> (
          match Fault.spec_of_string (Fault.spec_to_string spec) with
          | Ok again -> Alcotest.(check bool) ("round-trips: " ^ s) true (spec = again)
          | Error e -> Alcotest.fail (Printf.sprintf "reparse %s: %s" s e)))
    cases;
  List.iter
    (fun s ->
      match Fault.spec_of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted malformed spec %S" s))
    [
      "";
      "seed=7";
      "point";
      "point:explode";
      "point:crash:sometimes";
      "point:crash:p=2.5";
      "point:crash:nth=0";
      "bad name:crash";
      "seed=x,point:crash";
      "point:delay=abc";
    ]

let spec_gen =
  QCheck.Gen.(
    let point =
      oneofl [ "pool.worker"; "service.tier"; "cache.get"; "cache.put"; "json.decode"; "clock.read" ]
    in
    let action =
      oneof
        [
          return Fault.Crash;
          map (fun s -> Fault.Delay s) (float_range 0.0 2.0);
          return Fault.Corrupt;
        ]
    in
    let trigger =
      oneof
        [
          return Fault.Always;
          map (fun p -> Fault.Prob p) (float_range 0.0 1.0);
          map (fun n -> Fault.Nth n) (int_range 1 1000);
          map (fun k -> Fault.Every k) (int_range 1 1000);
        ]
    in
    let rule =
      map3 (fun point action trigger -> { Fault.point; action; trigger }) point action trigger
    in
    map2
      (fun seed rules -> { Fault.seed; rules })
      (int_range 0 max_int)
      (list_size (int_range 1 6) rule))

let prop_spec_roundtrip =
  QCheck.Test.make ~name:"fault specs round-trip through the grammar" ~count:300
    (QCheck.make spec_gen ~print:Fault.spec_to_string)
    (fun spec -> Fault.spec_of_string (Fault.spec_to_string spec) = Ok spec)

(* ---------- probes ---------- *)

let test_disarmed_probes_are_noops () =
  Fault.disarm ();
  let p = Fault.point "test.noop" in
  Fault.fire p;
  let payload = "payload" in
  Alcotest.(check bool) "corrupt returns the payload itself" true (Fault.corrupt p payload == payload);
  Alcotest.(check (float 0.0)) "skew returns the reading" 1.5 (Fault.skew p 1.5);
  Alcotest.(check bool) "nothing armed" false (Fault.armed ())

let test_deterministic_firing () =
  let p = Fault.point "test.det" in
  let pattern () =
    with_faults "seed=9,test.det:corrupt:p=0.5" (fun () ->
        let corrupted = List.init 32 (fun i -> Fault.corrupt p (Printf.sprintf "payload-%02d" i)) in
        Alcotest.(check int) "all probes counted" 32 (Fault.hits p);
        Alcotest.(check bool) "some fired, some did not" true
          (Fault.fired p > 0 && Fault.fired p < 32);
        corrupted)
  in
  Alcotest.(check (list string)) "re-arming replays the same corruption pattern" (pattern ())
    (pattern ());
  with_faults "seed=9,test.det:crash:nth=3" (fun () ->
      Fault.fire p;
      Fault.fire p;
      (match Fault.fire p with
      | () -> Alcotest.fail "third probe should crash"
      | exception Fault.Injected name -> Alcotest.(check string) "payload is the point" "test.det" name);
      Fault.fire p;
      Alcotest.(check int) "nth fires exactly once" 1 (Fault.fired p))

(* ---------- hardened JSON parser ---------- *)

let test_json_depth_limit () =
  let nest depth = String.make depth '[' ^ "1" ^ String.make depth ']' in
  (match Json.of_string (nest 1000) with
  | Error e ->
      Alcotest.(check bool) "deep nesting is a parse error" true
        (String.length e > 0 && not (String.equal e ""))
  | Ok _ -> Alcotest.fail "1000-deep nesting accepted");
  match Json.of_string (nest (Json.max_depth - 1)) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("nesting below the limit rejected: " ^ e)

let json_never_raises s =
  match Json.of_string s with
  | Ok _ | Error _ -> true
  | exception e -> QCheck.Test.fail_reportf "raised %s on %S" (Printexc.to_string e) s

let prop_json_fuzz_bytes =
  QCheck.Test.make ~name:"Json.of_string never raises on arbitrary bytes" ~count:2000
    QCheck.(string_gen QCheck.Gen.char)
    json_never_raises

let prop_json_fuzz_structured =
  let soup =
    QCheck.Gen.(string_size ~gen:(oneofl [ '['; ']'; '{'; '}'; '"'; ','; ':'; '0'; '-'; 'e'; '.'; '\\'; 'u'; 't'; 'n'; ' ' ]) (int_range 0 80))
  in
  QCheck.Test.make ~name:"Json.of_string never raises on syntax soup" ~count:2000
    (QCheck.make soup ~print:(Printf.sprintf "%S"))
    json_never_raises

(* ---------- pool supervision ---------- *)

let test_pool_supervision () =
  let pool = Pool.create ~domains:4 in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let input = Array.init 64 (fun i -> i) in
  let expected = Array.map (fun i -> i * i) input in
  let slow_square i =
    Unix.sleepf 0.0002;
    i * i
  in
  (* Workers crash on every claim: each round kills whatever workers got
     to a chunk, the chunks requeue, the submitter finishes them, and the
     next round respawns the dead domains. *)
  with_faults "seed=5,pool.worker:crash:always" (fun () ->
      let rounds = ref 0 in
      while Pool.worker_deaths pool = 0 && !rounds < 200 do
        incr rounds;
        Alcotest.(check bool)
          (Printf.sprintf "round %d results correct under worker crashes" !rounds)
          true
          (Pool.map pool slow_square input = expected)
      done;
      Alcotest.(check bool) "at least one worker died" true (Pool.worker_deaths pool > 0));
  Pool.supervise pool;
  Alcotest.(check int) "every death was respawned" (Pool.worker_deaths pool) (Pool.respawns pool);
  Alcotest.(check bool) "pool serves correctly after recovery" true
    (Pool.map pool slow_square input = expected)

(* ---------- service resilience ---------- *)

let triangle = [ (0, 1); (1, 2); (0, 2) ]

let req ?mode ?deadline_s ?id gamma =
  Request.make ?id ?mode ?deadline_s
    ~interaction:(Program.Qaoa_maxcut { gamma; beta = 0.25 })
    ~arch_kind:Qcr_arch.Arch.Line ~qubits:4 ~edges:triangle ()

let reply_body r =
  Json.to_string (Reply.strip_volatile (Reply.to_json { r with Reply.id = ""; cached = false }))

let quiet_service ?clock ?breaker_threshold ?breaker_cooldown_s ?retries () =
  Service.create ?clock ?breaker_threshold ?breaker_cooldown_s ?retries ~backoff_s:0.0
    ~sleep:(fun _ -> ())
    ()

let test_retry_bit_identity () =
  Fault.disarm ();
  let reference = Service.submit (quiet_service ()) (req 0.4) in
  with_faults "seed=3,service.tier:crash:nth=1" (fun () ->
      let s = quiet_service () in
      let r = Service.submit s (req 0.4) in
      Alcotest.(check string) "retried reply bit-identical to fault-free" (reply_body reference)
        (reply_body r);
      Alcotest.(check int) "one retry recorded" 1 (Service.stats s).Service.retries)

let test_breaker_opens_and_recovers () =
  let fake, clock = Clock.fake () in
  let s = quiet_service ~clock ~breaker_threshold:2 ~breaker_cooldown_s:10.0 ~retries:0 () in
  let greedy gamma = req gamma ~mode:Request.Greedy in
  let failed r =
    match r.Reply.outcome with
    | Reply.Failed (Pipeline.Internal _) -> true
    | _ -> false
  in
  with_faults "seed=2,service.tier:crash:always" (fun () ->
      Alcotest.(check bool) "crash 1 fails typed" true (failed (Service.submit s (greedy 0.1)));
      Alcotest.(check bool) "crash 2 fails typed" true (failed (Service.submit s (greedy 0.2)));
      Alcotest.(check (list (pair string string))) "greedy breaker open after threshold"
        [ ("portfolio", "closed"); ("ours", "closed"); ("greedy", "open"); ("ata", "closed") ]
        (Service.breaker_states s);
      Alcotest.(check int) "one trip" 1 (Service.stats s).Service.breaker_trips;
      (* open: the tier is skipped, the ladder exhausts without attempts *)
      Alcotest.(check bool) "open breaker short-circuits" true
        (failed (Service.submit s (greedy 0.3))));
  (* still open after disarm until the cooldown elapses *)
  Alcotest.(check bool) "skipped while cooling" true
    (match (Service.submit s (req 0.4 ~mode:Request.Greedy)).Reply.outcome with
    | Reply.Failed _ -> true
    | _ -> false);
  Clock.advance fake 11.0;
  let recovered = Service.submit s (req 0.5 ~mode:Request.Greedy) in
  (match recovered.Reply.outcome with
  | Reply.Compiled { mode = Request.Greedy; _ } -> ()
  | _ -> Alcotest.fail "half-open probe should recover the tier");
  Alcotest.(check (list (pair string string))) "breaker closed after successful probe"
    [ ("portfolio", "closed"); ("ours", "closed"); ("greedy", "closed"); ("ata", "closed") ]
    (Service.breaker_states s)

let test_breaker_halfopen_failure_reopens () =
  let fake, clock = Clock.fake () in
  let s = quiet_service ~clock ~breaker_threshold:1 ~breaker_cooldown_s:10.0 ~retries:0 () in
  with_faults "seed=2,service.tier:crash:always" (fun () ->
      ignore (Service.submit s (req 0.1 ~mode:Request.Greedy));
      Alcotest.(check int) "tripped" 1 (Service.stats s).Service.breaker_trips;
      Clock.advance fake 11.0;
      (* the half-open probe crashes too: straight back to open *)
      ignore (Service.submit s (req 0.2 ~mode:Request.Greedy));
      Alcotest.(check int) "failed probe re-trips" 2 (Service.stats s).Service.breaker_trips;
      Alcotest.(check bool) "open again" true
        (List.assoc "greedy" (Service.breaker_states s) = "open"))

let test_cache_corruption_evicted () =
  Fault.disarm ();
  let s = quiet_service () in
  let first = Service.submit s (req 0.4) in
  with_faults "seed=8,cache.get:corrupt:always" (fun () ->
      let r = Service.submit s (req 0.4) in
      Alcotest.(check bool) "corrupted hit recompiles instead of serving" false r.Reply.cached;
      Alcotest.(check string) "recompiled reply matches the original" (reply_body first)
        (reply_body r);
      Alcotest.(check int) "corruption counted" 1 (Service.stats s).Service.cache_corrupt);
  let clean = Service.submit s (req 0.4) in
  Alcotest.(check bool) "re-cached entry serves again once disarmed" true clean.Reply.cached;
  Alcotest.(check string) "and is bit-identical" (reply_body first) (reply_body clean)

let test_cache_put_corruption_detected () =
  with_faults "seed=8,cache.put:corrupt:always" (fun () ->
      let s = quiet_service () in
      let first = Service.submit s (req 0.4) in
      (* the entry was stored corrupted: the next lookup's digest check
         must evict it rather than serve it *)
      let r = Service.submit s (req 0.4) in
      Alcotest.(check bool) "poisoned entry never served" false r.Reply.cached;
      Alcotest.(check string) "recompile matches" (reply_body first) (reply_body r);
      Alcotest.(check int) "detected once so far" 1 (Service.stats s).Service.cache_corrupt)

let test_boundary_catches_everything () =
  with_faults "seed=1,clock.read:crash:nth=1" (fun () ->
      let s = quiet_service () in
      (* the very first clock read inside the service raises [Injected];
         the boundary must turn it into a typed Internal reply *)
      let r = Service.submit s (req 0.4 ~id:"boom") in
      (match r.Reply.outcome with
      | Reply.Failed (Pipeline.Internal msg) ->
          Alcotest.(check bool) "message names the boundary" true
            (String.length msg > 0
            && String.sub msg 0 (min 18 (String.length msg)) = "uncaught exception")
      | _ -> Alcotest.fail "expected a typed Internal reply from the boundary");
      Alcotest.(check string) "id preserved" "boom" r.Reply.id;
      Alcotest.(check int) "counted as error" 1 (Service.stats s).Service.errors;
      (* the fault was one-shot: the service keeps serving *)
      match (Service.submit s (req 0.5)).Reply.outcome with
      | Reply.Compiled _ -> ()
      | _ -> Alcotest.fail "service wedged after a boundary catch")

(* ---------- chaos batch invariants ---------- *)

let test_chaos_batch_invariants () =
  let batch =
    List.concat_map
      (fun gamma ->
        [
          req gamma ~id:(Printf.sprintf "o-%f" gamma);
          req gamma ~id:(Printf.sprintf "g-%f" gamma) ~mode:Request.Greedy;
          req gamma ~id:(Printf.sprintf "a-%f" gamma) ~mode:Request.Ata;
        ])
      [ 0.1; 0.2; 0.3; 0.1 ]
  in
  Fault.disarm ();
  let reference = Service.run_batch (Service.create ()) batch in
  let expected = Hashtbl.create 16 in
  List.iter
    (fun (r : Reply.t) ->
      match r.Reply.outcome with
      | Reply.Compiled { mode; _ } when mode = r.Reply.requested_mode ->
          Hashtbl.replace expected r.Reply.key (reply_body r)
      | _ -> ())
    reference;
  with_faults
    "seed=11,service.tier:crash:p=0.3,cache.get:corrupt:p=0.25,cache.put:corrupt:p=0.2,pool.worker:crash:nth=1"
    (fun () ->
      let s = quiet_service () in
      for round = 1 to 3 do
        let replies =
          try Service.run_batch s batch
          with e ->
            Alcotest.failf "round %d: exception escaped the boundary: %s" round
              (Printexc.to_string e)
        in
        Alcotest.(check (list string))
          (Printf.sprintf "round %d replies in request order" round)
          (List.map (fun (r : Request.t) -> r.Request.id) batch)
          (List.map (fun (r : Reply.t) -> r.Reply.id) replies);
        List.iter
          (fun (r : Reply.t) ->
            match r.Reply.outcome with
            | Reply.Compiled { mode; _ } when mode = r.Reply.requested_mode -> (
                match Hashtbl.find_opt expected r.Reply.key with
                | Some body ->
                    Alcotest.(check string)
                      (Printf.sprintf "round %d: %s bit-identical to fault-free" round r.Reply.id)
                      body (reply_body r)
                | None -> Alcotest.failf "unexpected ok reply for key %s" r.Reply.key)
            | _ -> ())
          replies
      done)

let suite =
  [
    Alcotest.test_case "spec grammar round-trip" `Quick test_spec_roundtrip;
    QCheck_alcotest.to_alcotest prop_spec_roundtrip;
    Alcotest.test_case "disarmed probes are no-ops" `Quick test_disarmed_probes_are_noops;
    Alcotest.test_case "seeded firing is deterministic" `Quick test_deterministic_firing;
    Alcotest.test_case "json depth limit" `Quick test_json_depth_limit;
    QCheck_alcotest.to_alcotest prop_json_fuzz_bytes;
    QCheck_alcotest.to_alcotest prop_json_fuzz_structured;
    Alcotest.test_case "pool supervision" `Quick test_pool_supervision;
    Alcotest.test_case "retry is bit-identical" `Quick test_retry_bit_identity;
    Alcotest.test_case "breaker opens and recovers" `Quick test_breaker_opens_and_recovers;
    Alcotest.test_case "half-open failure reopens" `Quick test_breaker_halfopen_failure_reopens;
    Alcotest.test_case "cache.get corruption evicted" `Quick test_cache_corruption_evicted;
    Alcotest.test_case "cache.put corruption detected" `Quick test_cache_put_corruption_detected;
    Alcotest.test_case "boundary catches everything" `Quick test_boundary_catches_everything;
    Alcotest.test_case "chaos batch invariants" `Quick test_chaos_batch_invariants;
  ]
