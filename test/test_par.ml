(* The domain pool: coverage, determinism across pool sizes, exception
   propagation, nested-submission inlining. *)

module Pool = Qcr_par.Pool

let with_pool domains f =
  let pool = Pool.create ~domains in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let test_parallel_for_covers_range () =
  with_pool 4 @@ fun pool ->
  let n = 10_000 in
  let hits = Array.make n 0 in
  Pool.parallel_for pool ~lo:0 ~hi:n (fun i -> hits.(i) <- hits.(i) + 1);
  Array.iteri
    (fun i h -> Alcotest.(check int) (Printf.sprintf "index %d hit once" i) 1 h)
    hits

let test_for_range_partition_exact () =
  with_pool 3 @@ fun pool ->
  let lo = 7 and hi = 7 + 1234 in
  let hits = Array.make (hi - lo) 0 in
  (* Alcotest's check is not safe to call from worker domains, so the
     chunk body only records; assertions run on the test domain after. *)
  let out_of_bounds = Atomic.make false in
  Pool.for_range pool ~chunks:11 ~lo ~hi (fun sub_lo sub_hi ->
      if not (sub_lo >= lo && sub_hi <= hi) then Atomic.set out_of_bounds true;
      for i = sub_lo to sub_hi - 1 do
        hits.(i - lo) <- hits.(i - lo) + 1
      done);
  Alcotest.(check bool) "subranges within bounds" false (Atomic.get out_of_bounds);
  Array.iter (fun h -> Alcotest.(check int) "covered exactly once" 1 h) hits

let test_empty_and_singleton_ranges () =
  with_pool 4 @@ fun pool ->
  let ran = ref 0 in
  Pool.parallel_for pool ~lo:5 ~hi:5 (fun _ -> incr ran);
  Alcotest.(check int) "empty range runs nothing" 0 !ran;
  Pool.parallel_for pool ~lo:5 ~hi:6 (fun i ->
      Alcotest.(check int) "singleton index" 5 i;
      incr ran);
  Alcotest.(check int) "singleton runs once" 1 !ran

let test_map_preserves_order () =
  with_pool 4 @@ fun pool ->
  let input = Array.init 777 (fun i -> i) in
  let out = Pool.map pool (fun x -> (x * 2) + 1) input in
  Alcotest.(check int) "length" 777 (Array.length out);
  Array.iteri
    (fun i v -> Alcotest.(check int) "mapped in order" ((i * 2) + 1) v)
    out;
  Alcotest.(check int) "empty map" 0 (Array.length (Pool.map pool succ [||]))

(* The float sum is order-sensitive; map_reduce promises the same fold
   order for any pool size, so the results must be bit-identical. *)
let test_map_reduce_bit_identical_across_sizes () =
  let n = 100_000 in
  let data = Array.init n (fun i -> sin (float_of_int i) *. 1e-3) in
  let sum pool =
    Pool.map_reduce pool ~chunk:1024 ~lo:0 ~hi:n
      ~map:(fun lo hi ->
        let acc = ref 0.0 in
        for i = lo to hi - 1 do
          acc := !acc +. data.(i)
        done;
        !acc)
      ~reduce:( +. ) ~init:0.0
  in
  let reference = with_pool 1 sum in
  List.iter
    (fun domains ->
      let s = with_pool domains sum in
      Alcotest.(check bool)
        (Printf.sprintf "sum at %d domains bit-identical" domains)
        true
        (Int64.equal (Int64.bits_of_float s) (Int64.bits_of_float reference)))
    [ 2; 4; 7 ]

let test_map_reduce_chunk_order () =
  with_pool 4 @@ fun pool ->
  (* Reducing with list cons exposes the fold order directly. *)
  let chunks =
    Pool.map_reduce pool ~chunk:10 ~lo:0 ~hi:95
      ~map:(fun lo hi -> [ (lo, hi) ])
      ~reduce:(fun acc c -> acc @ c)
      ~init:[]
  in
  let expected =
    List.init 10 (fun c -> (c * 10, min 95 ((c + 1) * 10)))
  in
  Alcotest.(check (list (pair int int))) "chunks folded in order" expected chunks

let test_exception_propagates_and_pool_survives () =
  with_pool 4 @@ fun pool ->
  (match
     Pool.parallel_for pool ~lo:0 ~hi:500 (fun i ->
         if i = 321 then failwith "boom-321")
   with
  | () -> Alcotest.fail "expected exception"
  | exception Failure m -> Alcotest.(check string) "failure message" "boom-321" m);
  (* The pool must drain cleanly and stay usable. *)
  let c = Atomic.make 0 in
  Pool.parallel_for pool ~lo:0 ~hi:1000 (fun _ -> ignore (Atomic.fetch_and_add c 1));
  Alcotest.(check int) "pool usable after exception" 1000 (Atomic.get c)

let test_nested_submission_runs_inline () =
  with_pool 4 @@ fun pool ->
  let outer = 16 and inner = 64 in
  let hits = Array.make (outer * inner) 0 in
  Pool.parallel_for pool ~lo:0 ~hi:outer (fun o ->
      Pool.parallel_for pool ~lo:0 ~hi:inner (fun i ->
          let k = (o * inner) + i in
          hits.(k) <- hits.(k) + 1));
  Array.iter (fun h -> Alcotest.(check int) "nested covered once" 1 h) hits

let test_shutdown_then_inline () =
  let pool = Pool.create ~domains:4 in
  Pool.shutdown pool;
  Pool.shutdown pool;
  let c = ref 0 in
  Pool.parallel_for pool ~lo:0 ~hi:100 (fun _ -> incr c);
  Alcotest.(check int) "inline after shutdown" 100 !c

let test_size_and_clamping () =
  let p0 = Pool.create ~domains:0 in
  Alcotest.(check int) "domains clamped to 1" 1 (Pool.size p0);
  Pool.shutdown p0;
  with_pool 3 @@ fun p3 -> Alcotest.(check int) "size 3" 3 (Pool.size p3)

let test_default_pool_env_or_override () =
  (* QCR_DOMAINS wins when set; otherwise the override applies. *)
  (match Sys.getenv_opt "QCR_DOMAINS" with
  | Some s ->
      let v = int_of_string (String.trim s) in
      Alcotest.(check int) "QCR_DOMAINS honoured" (min v 64)
        (Pool.default_domain_count ())
  | None ->
      Pool.set_default_domains 2;
      Alcotest.(check int) "override honoured" 2 (Pool.default_domain_count ()));
  let p = Pool.default () in
  Alcotest.(check bool) "default pool sized >= 1" true (Pool.size p >= 1);
  let c = Atomic.make 0 in
  Pool.parallel_for p ~lo:0 ~hi:256 (fun _ -> ignore (Atomic.fetch_and_add c 1));
  Alcotest.(check int) "default pool works" 256 (Atomic.get c)

let suite =
  [
    Alcotest.test_case "parallel_for covers range" `Quick test_parallel_for_covers_range;
    Alcotest.test_case "for_range exact partition" `Quick test_for_range_partition_exact;
    Alcotest.test_case "empty and singleton ranges" `Quick test_empty_and_singleton_ranges;
    Alcotest.test_case "map preserves order" `Quick test_map_preserves_order;
    Alcotest.test_case "map_reduce bit-identical across pool sizes" `Quick
      test_map_reduce_bit_identical_across_sizes;
    Alcotest.test_case "map_reduce folds in chunk order" `Quick test_map_reduce_chunk_order;
    Alcotest.test_case "exception propagates, pool survives" `Quick
      test_exception_propagates_and_pool_survives;
    Alcotest.test_case "nested submission runs inline" `Quick
      test_nested_submission_runs_inline;
    Alcotest.test_case "shutdown is idempotent, then inline" `Quick test_shutdown_then_inline;
    Alcotest.test_case "size clamping" `Quick test_size_and_clamping;
    Alcotest.test_case "default pool sizing" `Quick test_default_pool_env_or_override;
  ]
