(* The network front-end: the async job table, the versioned wire
   protocol, and loopback TCP servers checked bit-for-bit against the
   in-process service.  Each integration test spawns a real [Server] on
   an ephemeral port in its own domain (the event loop owns the service;
   the test domain only drives sockets), and stops it through the [stop]
   callback so graceful drain runs on every shutdown path. *)

module Json = Qcr_obs.Json
module Program = Qcr_circuit.Program
module Pipeline = Qcr_core.Pipeline
module Request = Qcr_service.Compile_request
module Reply = Qcr_service.Compile_reply
module Service = Qcr_service.Service
module Protocol = Qcr_service.Protocol
module Jobs = Qcr_net.Jobs
module Server = Qcr_net.Server
module Client = Qcr_net.Client

let triangle = [ (0, 1); (1, 2); (0, 2) ]

(* Distinct [gamma] values give distinct cache keys over the same shape. *)
let req ?mode ?id gamma =
  Request.make ?id ?mode
    ~interaction:(Program.Qaoa_maxcut { gamma; beta = 0.25 })
    ~arch_kind:Qcr_arch.Arch.Line ~qubits:4 ~edges:triangle ()

let ok_or_fail = function Ok v -> v | Error e -> Alcotest.fail ("recv: " ^ e)

let str_field j k =
  match Json.member k j with
  | Some (Json.Str s) -> s
  | _ -> Alcotest.fail (Printf.sprintf "missing string field %S in %s" k (Json.to_string j))

let num_field j k =
  match Json.member k j with
  | Some (Json.Num n) -> n
  | _ -> Alcotest.fail (Printf.sprintf "missing numeric field %S in %s" k (Json.to_string j))

let check_stamped j = Alcotest.(check (float 1e-9)) "reply stamped v2" 2.0 (num_field j "v")

(* Reply bodies comparable across transports: drop the version stamp,
   the volatile timings, and the cache flag (hit/miss depends on arrival
   order, not content — the bytes behind it are checked equal). *)
let normalize j =
  match Reply.strip_volatile j with
  | Json.Obj fields -> Json.Obj (List.filter (fun (k, _) -> k <> "v" && k <> "cached") fields)
  | other -> other

let submit_ok jobs ~client r =
  match Jobs.submit jobs ~client r with
  | Ok id -> id
  | Error _ -> Alcotest.fail "unexpected admission refusal"

(* ---------- Jobs: the transport-independent job table ---------- *)

let test_jobs_fair_order () =
  let s = Service.create () in
  let jobs = Jobs.create ~submit:(Service.submit s) () in
  let names = Hashtbl.create 8 in
  let sub client gamma name = Hashtbl.add names (submit_ok jobs ~client (req gamma ~id:name)) name in
  sub 1 0.01 "a";
  sub 1 0.02 "b";
  sub 1 0.03 "c";
  sub 2 0.04 "d";
  sub 3 0.05 "e";
  sub 3 0.06 "f";
  let order = ref [] in
  let rec drain () =
    match Jobs.run_next jobs with
    | Some (id, _, reply) ->
        Alcotest.(check string) "reply id follows the request" (Hashtbl.find names id)
          reply.Reply.id;
        order := Hashtbl.find names id :: !order;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list string)) "round-robin across clients, FIFO within"
    [ "a"; "d"; "e"; "b"; "f"; "c" ] (List.rev !order);
  Alcotest.(check bool) "idle after drain" false (Jobs.pending jobs)

let test_jobs_overload () =
  let s = Service.create () in
  let jobs = Jobs.create ~max_queue:2 ~submit:(Service.submit s) () in
  ignore (submit_ok jobs ~client:1 (req 0.11));
  ignore (submit_ok jobs ~client:1 (req 0.12));
  (match Jobs.submit jobs ~client:1 (req 0.13 ~id:"third") with
  | Ok _ -> Alcotest.fail "expected admission refusal at the queue limit"
  | Error r -> (
      Alcotest.(check string) "request id echoed" "third" r.Reply.id;
      match r.Reply.outcome with
      | Reply.Failed (Pipeline.Overloaded { queued; limit }) ->
          Alcotest.(check int) "queue depth" 2 queued;
          Alcotest.(check int) "limit" 2 limit
      | _ -> Alcotest.fail "expected a typed Overloaded reply"));
  (* a shed job is refused, not queued: running one frees one slot *)
  ignore (Jobs.run_next jobs);
  ignore (submit_ok jobs ~client:1 (req 0.14));
  Alcotest.(check (float 1e-9)) "shed counted once" 1.0
    (num_field (Jobs.stats_json jobs) "shed")

let test_jobs_cancel () =
  let s = Service.create () in
  let jobs = Jobs.create ~submit:(Service.submit s) () in
  let id1 = submit_ok jobs ~client:1 (req 0.21) in
  let id2 = submit_ok jobs ~client:1 (req 0.22) in
  (match Jobs.cancel jobs id2 with
  | Some (Jobs.Canceled r) -> (
      match r.Reply.outcome with
      | Reply.Failed Pipeline.Canceled -> ()
      | _ -> Alcotest.fail "canceled reply must carry the Canceled error")
  | _ -> Alcotest.fail "cancel of a queued job must land in Canceled");
  Alcotest.(check int) "cancel frees the queue slot" 1 (Jobs.queued jobs);
  (match Jobs.run_next jobs with
  | Some (id, client, _) ->
      Alcotest.(check string) "survivor runs" id1 id;
      Alcotest.(check int) "owned by its client" 1 client
  | None -> Alcotest.fail "the uncanceled job must run");
  (match Jobs.run_next jobs with
  | None -> ()
  | Some _ -> Alcotest.fail "a canceled job must never execute");
  (* terminal states are sticky: cancel after completion is a no-op *)
  (match Jobs.cancel jobs id1 with
  | Some (Jobs.Done _) -> ()
  | _ -> Alcotest.fail "cancel of a done job must leave it done");
  (* [take] is fetch-and-forget *)
  (match Jobs.take jobs id1 with
  | Some (Jobs.Done _) -> ()
  | _ -> Alcotest.fail "take must return the terminal state");
  Alcotest.(check bool) "taken job evicted" true (Jobs.find jobs id1 = None);
  Alcotest.(check bool) "unknown ids stay unknown" true (Jobs.cancel jobs "j-999" = None)

let test_jobs_drop_client () =
  let s = Service.create () in
  let jobs = Jobs.create ~submit:(Service.submit s) () in
  let a = submit_ok jobs ~client:1 (req 0.31) in
  let b = submit_ok jobs ~client:1 (req 0.32) in
  let c = submit_ok jobs ~client:2 (req 0.33) in
  Alcotest.(check int) "both queued jobs canceled" 2 (Jobs.drop_client jobs 1);
  Alcotest.(check int) "survivor still queued" 1 (Jobs.queued jobs);
  (match Jobs.run_next jobs with
  | Some (id, 2, _) -> Alcotest.(check string) "other client's job runs" c id
  | _ -> Alcotest.fail "client 2's job must survive the drop");
  (* the dropped client's jobs stay retained as canceled, for late polls *)
  List.iter
    (fun id ->
      match Jobs.find jobs id with
      | Some (Jobs.Canceled _) -> ()
      | _ -> Alcotest.fail "dropped job must be retained as canceled")
    [ a; b ]

let test_jobs_retention () =
  let s = Service.create () in
  let jobs = Jobs.create ~retain_done:1 ~submit:(Service.submit s) () in
  let a = submit_ok jobs ~client:1 (req 0.41) in
  let b = submit_ok jobs ~client:1 (req 0.42) in
  ignore (Jobs.run_next jobs);
  ignore (Jobs.run_next jobs);
  Alcotest.(check bool) "oldest terminal evicted" true (Jobs.find jobs a = None);
  (match Jobs.find jobs b with
  | Some (Jobs.Done _) -> ()
  | _ -> Alcotest.fail "newest terminal retained")

(* ---------- Protocol: the versioned typed wire format ---------- *)

let op_gen =
  QCheck.Gen.(
    float_range 0.0 1.0 >>= fun gamma ->
    oneofl [ Request.Ours; Request.Greedy; Request.Ata ] >>= fun mode ->
    oneofl [ "q1"; "q2"; "" ] >>= fun id ->
    let r = req gamma ~mode ~id in
    oneofl [ "j-1"; "j-42"; "stale" ] >>= fun job ->
    oneofl
      [
        Protocol.Op.Compile r;
        Protocol.Op.Submit r;
        Protocol.Op.Poll job;
        Protocol.Op.Wait job;
        Protocol.Op.Cancel job;
        Protocol.Op.Result job;
        Protocol.Op.Health;
        Protocol.Op.Stats;
        Protocol.Op.Metrics;
        Protocol.Op.Flush;
      ])

let op_arb = QCheck.make op_gen ~print:(fun op -> Json.to_string (Protocol.encode op))

let prop_op_roundtrip =
  QCheck.Test.make ~name:"Protocol decode (encode op) = op" ~count:300 op_arb (fun op ->
      match Protocol.decode (Json.to_string (Protocol.encode op)) with
      | Ok op' -> Protocol.Op.equal op op'
      | Error _ -> false)

let test_protocol_v1_compat () =
  let r = req 0.51 ~id:"v1" in
  (match Protocol.decode (Json.to_string (Request.to_json r)) with
  | Ok (Protocol.Op.Compile r') ->
      Alcotest.(check bool) "bare request object decodes as v1 compile" true (r' = r)
  | _ -> Alcotest.fail "v1 bare request must decode");
  (match Protocol.decode {|{"op":"health"}|} with
  | Ok Protocol.Op.Health -> ()
  | _ -> Alcotest.fail "unversioned op line must decode as v1");
  match Protocol.decode {|{"v":1,"op":"stats"}|} with
  | Ok Protocol.Op.Stats -> ()
  | _ -> Alcotest.fail "explicit v1 must decode"

let test_protocol_typed_errors () =
  let kind line =
    match Protocol.decode line with
    | Error e -> Protocol.wire_error_kind e
    | Ok _ -> "ok"
  in
  Alcotest.(check string) "broken JSON" "malformed" (kind "{nope");
  Alcotest.(check string) "non-object line" "malformed" (kind "42");
  Alcotest.(check string) "op of wrong type" "malformed" (kind {|{"v":2,"op":7}|});
  Alcotest.(check string) "job op without id" "malformed" (kind {|{"v":2,"op":"poll"}|});
  Alcotest.(check string) "unknown op" "unknown_op" (kind {|{"v":2,"op":"frobnicate"}|});
  Alcotest.(check string) "future version" "bad_version" (kind {|{"v":3,"op":"health"}|});
  Alcotest.(check string) "fractional version" "malformed" (kind {|{"v":1.5,"op":"health"}|})

let test_protocol_reply_stamping () =
  check_stamped (Protocol.ok_reply []);
  let e = Protocol.error_reply (Protocol.Unknown_op "zap") in
  check_stamped e;
  Alcotest.(check string) "error status" "error" (str_field e "status");
  (match Json.member "error" e with
  | Some err ->
      Alcotest.(check string) "typed kind" "unknown_op" (str_field err "kind")
  | None -> Alcotest.fail "error reply needs an error object");
  let je = Protocol.job_error_reply ~kind:"unknown_job" ~job:"j-9" ~message:"gone" in
  check_stamped je;
  (match Json.member "error" je with
  | Some err ->
      Alcotest.(check string) "job error kind" "unknown_job" (str_field err "kind");
      Alcotest.(check string) "job id echoed" "j-9" (str_field err "job")
  | None -> Alcotest.fail "job error reply needs an error object");
  (* stamping is idempotent *)
  Alcotest.(check bool) "with_version idempotent" true
    (Json.equal (Protocol.with_version (Protocol.ok_reply [])) (Protocol.ok_reply []))

(* ---------- Loopback TCP integration ---------- *)

(* The server event loop owns the service; it runs in its own domain and
   is stopped through the [stop] callback, so every test exercises the
   graceful-drain path on the way out. *)
let with_server ?(max_queue = 64) ?(idle_timeout_s = 300.0) f =
  let service = Service.create () in
  let port = Atomic.make 0 in
  let stopping = Atomic.make false in
  let config =
    { Server.default_config with port = 0; tick_s = 0.002; max_queue; idle_timeout_s }
  in
  let dom =
    Domain.spawn (fun () ->
        Server.serve ~config
          ~on_listen:(fun p -> Atomic.set port p)
          ~stop:(fun () -> Atomic.get stopping)
          service)
  in
  let stop () =
    Atomic.set stopping true;
    Domain.join dom
  in
  let deadline = Unix.gettimeofday () +. 10.0 in
  while Atomic.get port = 0 && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.001
  done;
  if Atomic.get port = 0 then begin
    stop ();
    Alcotest.fail "server never started listening"
  end;
  Fun.protect ~finally:stop (fun () -> f service (Atomic.get port))

let with_client port f =
  let c = Client.connect ~port () in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let test_tcp_compile_matches_direct () =
  with_server (fun _ port ->
      with_client port (fun c ->
          let direct = Service.create () in
          List.iter
            (fun gamma ->
              let r = req gamma ~id:"probe" in
              let wire = ok_or_fail (Client.request c (Protocol.encode (Protocol.Op.Compile r))) in
              check_stamped wire;
              let expect = Reply.to_json (Service.submit direct r) in
              Alcotest.(check string) "wire reply bit-identical to in-process service"
                (Json.to_string (normalize expect))
                (Json.to_string (normalize wire)))
            (* repeat 0.61: one side of the comparison is a cache hit *)
            [ 0.61; 0.62; 0.61 ]))

let test_tcp_job_lifecycle () =
  with_server (fun _ port ->
      with_client port (fun c ->
          let sub = ok_or_fail (Client.request c (Protocol.encode (Protocol.Op.Submit (req 0.63)))) in
          check_stamped sub;
          let id = str_field sub "job" in
          Alcotest.(check string) "admitted as queued" "queued" (str_field sub "state");
          let w = ok_or_fail (Client.request c (Protocol.encode (Protocol.Op.Wait id))) in
          Alcotest.(check string) "wait returns the terminal state" "done" (str_field w "state");
          (match Json.member "reply" w with
          | Some r ->
              check_stamped r;
              Alcotest.(check string) "compiled ok" "ok" (str_field r "status")
          | None -> Alcotest.fail "terminal reply embeds the compile reply");
          let res = ok_or_fail (Client.request c (Protocol.encode (Protocol.Op.Result id))) in
          Alcotest.(check string) "result fetches the reply" "done" (str_field res "state");
          let again = ok_or_fail (Client.request c (Protocol.encode (Protocol.Op.Result id))) in
          (match Json.member "error" again with
          | Some err ->
              Alcotest.(check string) "result is fetch-and-forget" "unknown_job"
                (str_field err "kind")
          | None -> Alcotest.fail "second result must be a typed unknown_job");
          let p = ok_or_fail (Client.request c (Protocol.encode (Protocol.Op.Poll "j-77"))) in
          match Json.member "error" p with
          | Some err ->
              Alcotest.(check string) "unknown id is typed" "unknown_job" (str_field err "kind")
          | None -> Alcotest.fail "poll of an unknown id must be a typed error"))

(* Batching submit+cancel lines in one write makes the ordering exact:
   the event loop drains every line of a read before running a job, so
   j-2 is canceled while still queued. *)
let test_tcp_cancel_before_run () =
  with_server (fun _ port ->
      with_client port (fun c ->
          let lines =
            [
              Json.to_string (Protocol.encode (Protocol.Op.Submit (req 0.64 ~id:"keep")));
              Json.to_string (Protocol.encode (Protocol.Op.Submit (req 0.65 ~id:"kill")));
              Json.to_string (Protocol.encode (Protocol.Op.Cancel "j-2"));
            ]
          in
          Client.send_line c (String.concat "\n" lines);
          let r1 = ok_or_fail (Client.recv c) in
          let r2 = ok_or_fail (Client.recv c) in
          let rc = ok_or_fail (Client.recv c) in
          Alcotest.(check string) "first admitted" "queued" (str_field r1 "state");
          Alcotest.(check string) "second admitted" "queued" (str_field r2 "state");
          Alcotest.(check string) "canceled while queued" "canceled" (str_field rc "state");
          (match Json.member "reply" rc with
          | Some r -> (
              Alcotest.(check string) "request id echoed" "kill" (str_field r "id");
              match Json.member "error" r with
              | Some err -> Alcotest.(check string) "typed error" "canceled" (str_field err "kind")
              | None -> Alcotest.fail "canceled reply carries the typed error")
          | None -> Alcotest.fail "cancel reply embeds the canceled compile reply");
          (* the survivor still completes *)
          let w = ok_or_fail (Client.request c (Protocol.encode (Protocol.Op.Wait "j-1"))) in
          Alcotest.(check string) "survivor done" "done" (str_field w "state")))

let test_tcp_overload_sheds () =
  with_server ~max_queue:2 (fun _ port ->
      with_client port (fun c ->
          let lines =
            List.init 4 (fun k ->
                Json.to_string
                  (Protocol.encode
                     (Protocol.Op.Submit (req (0.66 +. (0.01 *. float_of_int k))))))
          in
          (* one write: all four admissions happen before any job runs *)
          Client.send_line c (String.concat "\n" lines);
          let state_of j =
            match Json.member "job" j with
            | Some _ -> str_field j "state"
            | None -> (
                match Json.member "error" j with
                | Some err -> str_field err "kind"
                | None -> Alcotest.fail ("unexpected reply " ^ Json.to_string j))
          in
          let states = List.init 4 (fun _ -> state_of (ok_or_fail (Client.recv c))) in
          Alcotest.(check (list string)) "beyond the limit, typed Overloaded"
            [ "queued"; "queued"; "overloaded"; "overloaded" ]
            states;
          (* admitted work still completes; shed work left no ghost jobs *)
          let w = ok_or_fail (Client.request c (Protocol.encode (Protocol.Op.Wait "j-2"))) in
          Alcotest.(check string) "admitted jobs complete" "done" (str_field w "state");
          let stats = ok_or_fail (Client.request c (Protocol.encode Protocol.Op.Stats)) in
          match Json.member "jobs" stats with
          | Some jstats ->
              Alcotest.(check (float 1e-9)) "shed count" 2.0 (num_field jstats "shed");
              Alcotest.(check (float 1e-9)) "submitted count" 2.0 (num_field jstats "submitted")
          | None -> Alcotest.fail "stats reply must carry the jobs block"))

(* Several connections with interleaved async traffic: every reply must
   be bit-identical to what a private in-process service produces for
   the same request. *)
let test_tcp_concurrent_clients_bit_identical () =
  with_server (fun _ port ->
      let n_clients = 5 and per_client = 3 in
      let gamma i k = 0.1 +. (0.01 *. float_of_int ((i * per_client) + k)) in
      let rid i k = Printf.sprintf "c%d-%d" i k in
      let clients = Array.init n_clients (fun _ -> Client.connect ~port ()) in
      Fun.protect
        ~finally:(fun () -> Array.iter Client.close clients)
        (fun () ->
          (* every client fires its whole burst before anyone reads *)
          Array.iteri
            (fun i c ->
              let lines =
                List.init per_client (fun k ->
                    Json.to_string
                      (Protocol.encode (Protocol.Op.Submit (req (gamma i k) ~id:(rid i k)))))
              in
              Client.send_line c (String.concat "\n" lines))
            clients;
          let ids =
            Array.map
              (fun c ->
                List.init per_client (fun _ ->
                    let j = ok_or_fail (Client.recv c) in
                    Alcotest.(check string) "admitted" "queued" (str_field j "state");
                    str_field j "job"))
              clients
          in
          let direct = Service.create () in
          Array.iteri
            (fun i c ->
              List.iteri
                (fun k id ->
                  let w = ok_or_fail (Client.request c (Protocol.encode (Protocol.Op.Wait id))) in
                  Alcotest.(check string) "job done" "done" (str_field w "state");
                  let wire =
                    match Json.member "reply" w with
                    | Some r -> r
                    | None -> Alcotest.fail "terminal wait embeds the reply"
                  in
                  let expect = Reply.to_json (Service.submit direct (req (gamma i k) ~id:(rid i k))) in
                  Alcotest.(check string)
                    (Printf.sprintf "client %d job %d bit-identical to direct service" i k)
                    (Json.to_string (normalize expect))
                    (Json.to_string (normalize wire)))
                ids.(i))
            clients))

let test_tcp_disconnect_cancels () =
  with_server (fun _ port ->
      let c = Client.connect ~port () in
      let lines =
        List.init 3 (fun k ->
            Json.to_string
              (Protocol.encode (Protocol.Op.Submit (req (0.71 +. (0.01 *. float_of_int k))))))
      in
      Client.send_line c (String.concat "\n" lines);
      (* vanish without reading a single reply: the server must cancel
         whatever it had not started for this client *)
      Client.close c;
      with_client port (fun c2 ->
          let deadline = Unix.gettimeofday () +. 10.0 in
          let rec settle () =
            let stats = ok_or_fail (Client.request c2 (Protocol.encode Protocol.Op.Stats)) in
            let jstats =
              match Json.member "jobs" stats with
              | Some j -> j
              | None -> Alcotest.fail "stats reply must carry the jobs block"
            in
            let completed = num_field jstats "completed" and canceled = num_field jstats "canceled" in
            if completed +. canceled >= 3.0 then (jstats, completed, canceled)
            else if Unix.gettimeofday () > deadline then
              Alcotest.fail "orphaned jobs never settled after disconnect"
            else begin
              Unix.sleepf 0.005;
              settle ()
            end
          in
          let jstats, completed, canceled = settle () in
          Alcotest.(check (float 1e-9)) "every job accounted for" 3.0 (completed +. canceled);
          Alcotest.(check bool) "at least one canceled by the disconnect" true (canceled >= 1.0);
          Alcotest.(check (float 1e-9)) "nothing left queued" 0.0 (num_field jstats "queued")))

let test_tcp_v1_lines () =
  with_server (fun _ port ->
      with_client port (fun c ->
          (* a pre-v2 client: bare request object, unversioned op lines *)
          Client.send_line c (Json.to_string (Request.to_json (req 0.74 ~id:"legacy")));
          let r = ok_or_fail (Client.recv c) in
          check_stamped r;
          Alcotest.(check string) "v1 compile served" "ok" (str_field r "status");
          Alcotest.(check string) "id echoed" "legacy" (str_field r "id");
          Client.send_line c {|{"op":"health"}|};
          let h = ok_or_fail (Client.recv c) in
          check_stamped h;
          Alcotest.(check string) "v1 health ok" "ok" (str_field h "status")))

let test_tcp_bad_lines_keep_connection () =
  with_server (fun _ port ->
      with_client port (fun c ->
          let error_kind line =
            Client.send_line c line;
            let j = ok_or_fail (Client.recv c) in
            check_stamped j;
            match Json.member "error" j with
            | Some err -> str_field err "kind"
            | None -> Alcotest.fail ("expected an error reply, got " ^ Json.to_string j)
          in
          Alcotest.(check string) "garbage line" "malformed" (error_kind "}{ not json");
          Alcotest.(check string) "unknown op" "unknown_op" (error_kind {|{"v":2,"op":"zap"}|});
          Alcotest.(check string) "future version" "bad_version"
            (error_kind {|{"v":9,"op":"health"}|});
          (* the connection survived all three *)
          let h = ok_or_fail (Client.request c (Protocol.encode Protocol.Op.Health)) in
          Alcotest.(check string) "still serving" "ok" (str_field h "status")))

let test_tcp_idle_timeout () =
  with_server ~idle_timeout_s:0.05 (fun _ port ->
      with_client port (fun c ->
          match Client.recv_line ~timeout_s:10.0 c with
          | Error "eof" -> ()
          | Error e -> Alcotest.fail ("expected idle close, got error " ^ e)
          | Ok l -> Alcotest.fail ("expected idle close, got line " ^ l)))

(* Stop the server while jobs are queued and a wait is parked: graceful
   drain must run the admitted jobs, answer the wait, and flush before
   closing. *)
let test_tcp_graceful_drain () =
  let service = Service.create () in
  let port = Atomic.make 0 in
  let stopping = Atomic.make false in
  let config = { Server.default_config with port = 0; tick_s = 0.002 } in
  let dom =
    Domain.spawn (fun () ->
        Server.serve ~config
          ~on_listen:(fun p -> Atomic.set port p)
          ~stop:(fun () -> Atomic.get stopping)
          service)
  in
  while Atomic.get port = 0 do
    Unix.sleepf 0.001
  done;
  let c = Client.connect ~port:(Atomic.get port) () in
  let lines =
    List.init 3 (fun k ->
        Json.to_string (Protocol.encode (Protocol.Op.Submit (req (0.81 +. (0.01 *. float_of_int k))))))
    @ [ Json.to_string (Protocol.encode (Protocol.Op.Wait "j-3")) ]
  in
  Client.send_line c (String.concat "\n" lines);
  (* wait for the admissions so stop cannot beat the reads, then pull the
     rug: the drain owes us the parked wait and any still-queued jobs *)
  List.iter
    (fun _ ->
      let j = ok_or_fail (Client.recv c) in
      Alcotest.(check string) "admission reply delivered" "queued" (str_field j "state"))
    [ 1; 2; 3 ];
  Atomic.set stopping true;
  Domain.join dom;
  let w = ok_or_fail (Client.recv c) in
  Alcotest.(check string) "parked wait answered during drain" "done" (str_field w "state");
  (match Client.recv_line c with
  | Error ("eof" | "eof mid-line") -> ()
  | Error e -> Alcotest.fail ("expected close after drain, got error " ^ e)
  | Ok l -> Alcotest.fail ("unexpected extra line " ^ l));
  Client.close c;
  Alcotest.(check int) "all admitted jobs compiled during drain" 3
    (Service.stats service).Service.requests

let suite =
  [
    Alcotest.test_case "jobs fair order" `Quick test_jobs_fair_order;
    Alcotest.test_case "jobs overload" `Quick test_jobs_overload;
    Alcotest.test_case "jobs cancel" `Quick test_jobs_cancel;
    Alcotest.test_case "jobs drop client" `Quick test_jobs_drop_client;
    Alcotest.test_case "jobs retention" `Quick test_jobs_retention;
    QCheck_alcotest.to_alcotest prop_op_roundtrip;
    Alcotest.test_case "protocol v1 compat" `Quick test_protocol_v1_compat;
    Alcotest.test_case "protocol typed errors" `Quick test_protocol_typed_errors;
    Alcotest.test_case "protocol reply stamping" `Quick test_protocol_reply_stamping;
    Alcotest.test_case "tcp compile matches direct" `Quick test_tcp_compile_matches_direct;
    Alcotest.test_case "tcp job lifecycle" `Quick test_tcp_job_lifecycle;
    Alcotest.test_case "tcp cancel before run" `Quick test_tcp_cancel_before_run;
    Alcotest.test_case "tcp overload sheds" `Quick test_tcp_overload_sheds;
    Alcotest.test_case "tcp concurrent clients bit-identical" `Quick
      test_tcp_concurrent_clients_bit_identical;
    Alcotest.test_case "tcp disconnect cancels" `Quick test_tcp_disconnect_cancels;
    Alcotest.test_case "tcp v1 lines" `Quick test_tcp_v1_lines;
    Alcotest.test_case "tcp bad lines keep connection" `Quick test_tcp_bad_lines_keep_connection;
    Alcotest.test_case "tcp idle timeout" `Quick test_tcp_idle_timeout;
    Alcotest.test_case "tcp graceful drain" `Quick test_tcp_graceful_drain;
  ]
