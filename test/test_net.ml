(* The network front-end: the async job table, the versioned wire
   protocol, and loopback TCP servers checked bit-for-bit against the
   in-process service.  Each integration test spawns a real [Server] on
   an ephemeral port in its own domain (the event loop owns the service;
   the test domain only drives sockets), and stops it through the [stop]
   callback so graceful drain runs on every shutdown path. *)

module Json = Qcr_obs.Json
module Program = Qcr_circuit.Program
module Pipeline = Qcr_core.Pipeline
module Request = Qcr_service.Compile_request
module Reply = Qcr_service.Compile_reply
module Service = Qcr_service.Service
module Protocol = Qcr_service.Protocol
module Jobs = Qcr_net.Jobs
module Server = Qcr_net.Server
module Client = Qcr_net.Client

let triangle = [ (0, 1); (1, 2); (0, 2) ]

(* Distinct [gamma] values give distinct cache keys over the same shape. *)
let req ?mode ?id gamma =
  Request.make ?id ?mode
    ~interaction:(Program.Qaoa_maxcut { gamma; beta = 0.25 })
    ~arch_kind:Qcr_arch.Arch.Line ~qubits:4 ~edges:triangle ()

let ok_or_fail = function Ok v -> v | Error e -> Alcotest.fail ("recv: " ^ e)

let str_field j k =
  match Json.member k j with
  | Some (Json.Str s) -> s
  | _ -> Alcotest.fail (Printf.sprintf "missing string field %S in %s" k (Json.to_string j))

let num_field j k =
  match Json.member k j with
  | Some (Json.Num n) -> n
  | _ -> Alcotest.fail (Printf.sprintf "missing numeric field %S in %s" k (Json.to_string j))

let check_stamped j = Alcotest.(check (float 1e-9)) "reply stamped v2" 2.0 (num_field j "v")

(* Reply bodies comparable across transports: drop the version stamp,
   the volatile timings, and the cache flag (hit/miss depends on arrival
   order, not content — the bytes behind it are checked equal). *)
let normalize j =
  match Reply.strip_volatile j with
  | Json.Obj fields -> Json.Obj (List.filter (fun (k, _) -> k <> "v" && k <> "cached") fields)
  | other -> other

let submit_ok jobs ~client ?idem r =
  match Jobs.submit jobs ~client ?idem r with
  | Ok (Jobs.Admitted id) -> id
  | Ok (Jobs.Deduped id) -> Alcotest.fail ("unexpected dedupe to " ^ id)
  | Error _ -> Alcotest.fail "unexpected admission refusal"

(* ---------- Jobs: the transport-independent job table ---------- *)

let test_jobs_fair_order () =
  let s = Service.create () in
  let jobs = Jobs.create ~submit:(Service.submit s) () in
  let names = Hashtbl.create 8 in
  let sub client gamma name = Hashtbl.add names (submit_ok jobs ~client (req gamma ~id:name)) name in
  sub 1 0.01 "a";
  sub 1 0.02 "b";
  sub 1 0.03 "c";
  sub 2 0.04 "d";
  sub 3 0.05 "e";
  sub 3 0.06 "f";
  let order = ref [] in
  let rec drain () =
    match Jobs.run_next jobs with
    | Some (id, _, reply) ->
        Alcotest.(check string) "reply id follows the request" (Hashtbl.find names id)
          reply.Reply.id;
        order := Hashtbl.find names id :: !order;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list string)) "round-robin across clients, FIFO within"
    [ "a"; "d"; "e"; "b"; "f"; "c" ] (List.rev !order);
  Alcotest.(check bool) "idle after drain" false (Jobs.pending jobs)

let test_jobs_overload () =
  let s = Service.create () in
  let jobs = Jobs.create ~max_queue:2 ~submit:(Service.submit s) () in
  ignore (submit_ok jobs ~client:1 (req 0.11));
  ignore (submit_ok jobs ~client:1 (req 0.12));
  (match Jobs.submit jobs ~client:1 (req 0.13 ~id:"third") with
  | Ok _ -> Alcotest.fail "expected admission refusal at the queue limit"
  | Error r -> (
      Alcotest.(check string) "request id echoed" "third" r.Reply.id;
      match r.Reply.outcome with
      | Reply.Failed (Pipeline.Overloaded { queued; limit }) ->
          Alcotest.(check int) "queue depth" 2 queued;
          Alcotest.(check int) "limit" 2 limit
      | _ -> Alcotest.fail "expected a typed Overloaded reply"));
  (* a shed job is refused, not queued: running one frees one slot *)
  ignore (Jobs.run_next jobs);
  ignore (submit_ok jobs ~client:1 (req 0.14));
  Alcotest.(check (float 1e-9)) "shed counted once" 1.0
    (num_field (Jobs.stats_json jobs) "shed")

let test_jobs_cancel () =
  let s = Service.create () in
  let jobs = Jobs.create ~submit:(Service.submit s) () in
  let id1 = submit_ok jobs ~client:1 (req 0.21) in
  let id2 = submit_ok jobs ~client:1 (req 0.22) in
  (match Jobs.cancel jobs id2 with
  | Some (Jobs.Canceled r) -> (
      match r.Reply.outcome with
      | Reply.Failed Pipeline.Canceled -> ()
      | _ -> Alcotest.fail "canceled reply must carry the Canceled error")
  | _ -> Alcotest.fail "cancel of a queued job must land in Canceled");
  Alcotest.(check int) "cancel frees the queue slot" 1 (Jobs.queued jobs);
  (match Jobs.run_next jobs with
  | Some (id, client, _) ->
      Alcotest.(check string) "survivor runs" id1 id;
      Alcotest.(check int) "owned by its client" 1 client
  | None -> Alcotest.fail "the uncanceled job must run");
  (match Jobs.run_next jobs with
  | None -> ()
  | Some _ -> Alcotest.fail "a canceled job must never execute");
  (* terminal states are sticky: cancel after completion is a no-op *)
  (match Jobs.cancel jobs id1 with
  | Some (Jobs.Done _) -> ()
  | _ -> Alcotest.fail "cancel of a done job must leave it done");
  (* [take] is fetch-and-forget *)
  (match Jobs.take jobs id1 with
  | Some (Jobs.Done _) -> ()
  | _ -> Alcotest.fail "take must return the terminal state");
  Alcotest.(check bool) "taken job evicted" true (Jobs.find jobs id1 = None);
  Alcotest.(check bool) "unknown ids stay unknown" true (Jobs.cancel jobs "j-999" = None)

let test_jobs_drop_client () =
  let s = Service.create () in
  let jobs = Jobs.create ~submit:(Service.submit s) () in
  let a = submit_ok jobs ~client:1 (req 0.31) in
  let b = submit_ok jobs ~client:1 (req 0.32) in
  let c = submit_ok jobs ~client:2 (req 0.33) in
  Alcotest.(check int) "both queued jobs canceled" 2 (Jobs.drop_client jobs 1);
  Alcotest.(check int) "survivor still queued" 1 (Jobs.queued jobs);
  (match Jobs.run_next jobs with
  | Some (id, 2, _) -> Alcotest.(check string) "other client's job runs" c id
  | _ -> Alcotest.fail "client 2's job must survive the drop");
  (* the dropped client's jobs stay retained as canceled, for late polls *)
  List.iter
    (fun id ->
      match Jobs.find jobs id with
      | Some (Jobs.Canceled _) -> ()
      | _ -> Alcotest.fail "dropped job must be retained as canceled")
    [ a; b ]

let test_jobs_retention () =
  let s = Service.create () in
  let jobs = Jobs.create ~retain_done:1 ~submit:(Service.submit s) () in
  let a = submit_ok jobs ~client:1 (req 0.41) in
  let b = submit_ok jobs ~client:1 (req 0.42) in
  ignore (Jobs.run_next jobs);
  ignore (Jobs.run_next jobs);
  Alcotest.(check bool) "oldest terminal evicted" true (Jobs.find jobs a = None);
  (match Jobs.find jobs b with
  | Some (Jobs.Done _) -> ()
  | _ -> Alcotest.fail "newest terminal retained")

(* ---------- Protocol: the versioned typed wire format ---------- *)

let op_gen =
  QCheck.Gen.(
    float_range 0.0 1.0 >>= fun gamma ->
    oneofl [ Request.Ours; Request.Greedy; Request.Ata ] >>= fun mode ->
    oneofl [ "q1"; "q2"; "" ] >>= fun id ->
    let r = req gamma ~mode ~id in
    oneofl [ "j-1"; "j-42"; "stale" ] >>= fun job ->
    oneofl [ None; Some "retry-1"; Some "idem/with specials:=,"; Some "k" ] >>= fun idem ->
    oneofl
      [
        Protocol.Op.Compile r;
        Protocol.Op.Submit (r, idem);
        Protocol.Op.Poll job;
        Protocol.Op.Wait job;
        Protocol.Op.Cancel job;
        Protocol.Op.Result job;
        Protocol.Op.Jobs;
        Protocol.Op.Health;
        Protocol.Op.Stats;
        Protocol.Op.Metrics;
        Protocol.Op.Flush;
      ])

let op_arb = QCheck.make op_gen ~print:(fun op -> Json.to_string (Protocol.encode op))

let prop_op_roundtrip =
  QCheck.Test.make ~name:"Protocol decode (encode op) = op" ~count:300 op_arb (fun op ->
      match Protocol.decode (Json.to_string (Protocol.encode op)) with
      | Ok op' -> Protocol.Op.equal op op'
      | Error _ -> false)

let test_protocol_v1_compat () =
  let r = req 0.51 ~id:"v1" in
  (match Protocol.decode (Json.to_string (Request.to_json r)) with
  | Ok (Protocol.Op.Compile r') ->
      Alcotest.(check bool) "bare request object decodes as v1 compile" true (r' = r)
  | _ -> Alcotest.fail "v1 bare request must decode");
  (match Protocol.decode {|{"op":"health"}|} with
  | Ok Protocol.Op.Health -> ()
  | _ -> Alcotest.fail "unversioned op line must decode as v1");
  match Protocol.decode {|{"v":1,"op":"stats"}|} with
  | Ok Protocol.Op.Stats -> ()
  | _ -> Alcotest.fail "explicit v1 must decode"

let test_protocol_typed_errors () =
  let kind line =
    match Protocol.decode line with
    | Error e -> Protocol.wire_error_kind e
    | Ok _ -> "ok"
  in
  Alcotest.(check string) "broken JSON" "malformed" (kind "{nope");
  Alcotest.(check string) "non-object line" "malformed" (kind "42");
  Alcotest.(check string) "op of wrong type" "malformed" (kind {|{"v":2,"op":7}|});
  Alcotest.(check string) "job op without id" "malformed" (kind {|{"v":2,"op":"poll"}|});
  Alcotest.(check string) "unknown op" "unknown_op" (kind {|{"v":2,"op":"frobnicate"}|});
  Alcotest.(check string) "future version" "bad_version" (kind {|{"v":3,"op":"health"}|});
  Alcotest.(check string) "fractional version" "malformed" (kind {|{"v":1.5,"op":"health"}|})

let test_protocol_reply_stamping () =
  check_stamped (Protocol.ok_reply []);
  let e = Protocol.error_reply (Protocol.Unknown_op "zap") in
  check_stamped e;
  Alcotest.(check string) "error status" "error" (str_field e "status");
  (match Json.member "error" e with
  | Some err ->
      Alcotest.(check string) "typed kind" "unknown_op" (str_field err "kind")
  | None -> Alcotest.fail "error reply needs an error object");
  let je = Protocol.job_error_reply ~kind:"unknown_job" ~job:"j-9" ~message:"gone" in
  check_stamped je;
  (match Json.member "error" je with
  | Some err ->
      Alcotest.(check string) "job error kind" "unknown_job" (str_field err "kind");
      Alcotest.(check string) "job id echoed" "j-9" (str_field err "job")
  | None -> Alcotest.fail "job error reply needs an error object");
  (* stamping is idempotent *)
  Alcotest.(check bool) "with_version idempotent" true
    (Json.equal (Protocol.with_version (Protocol.ok_reply [])) (Protocol.ok_reply []))

let test_protocol_idem_and_jobs () =
  let r = req 0.91 ~id:"idem" in
  let rj = Json.to_string (Request.to_json r) in
  (match Protocol.decode (Json.to_string (Protocol.encode (Protocol.Op.Submit (r, Some "retry-9")))) with
  | Ok (Protocol.Op.Submit (r', Some k)) ->
      Alcotest.(check bool) "request round-trips next to idem" true (r' = r);
      Alcotest.(check string) "idem round-trips" "retry-9" k
  | _ -> Alcotest.fail "submit with idem must decode");
  (* the idem field is additive: v1 (unversioned) lines carry it too *)
  (match Protocol.decode (Printf.sprintf {|{"op":"submit","request":%s,"idem":"k1"}|} rj) with
  | Ok (Protocol.Op.Submit (_, Some "k1")) -> ()
  | _ -> Alcotest.fail "unversioned submit with idem must decode");
  (match Protocol.decode (Printf.sprintf {|{"v":2,"op":"submit","request":%s}|} rj) with
  | Ok (Protocol.Op.Submit (_, None)) -> ()
  | _ -> Alcotest.fail "submit without idem must decode to None");
  let kind line =
    match Protocol.decode line with
    | Error e -> Protocol.wire_error_kind e
    | Ok _ -> "ok"
  in
  Alcotest.(check string) "numeric idem" "malformed"
    (kind (Printf.sprintf {|{"v":2,"op":"submit","request":%s,"idem":7}|} rj));
  Alcotest.(check string) "empty idem" "malformed"
    (kind (Printf.sprintf {|{"v":2,"op":"submit","request":%s,"idem":""}|} rj));
  (* the jobs introspection op, in both wire versions *)
  (match Protocol.decode {|{"op":"jobs"}|} with
  | Ok Protocol.Op.Jobs -> ()
  | _ -> Alcotest.fail "unversioned jobs op must decode");
  (match Protocol.decode {|{"v":2,"op":"jobs"}|} with
  | Ok Protocol.Op.Jobs -> ()
  | _ -> Alcotest.fail "v2 jobs op must decode");
  match Protocol.decode (Json.to_string (Protocol.encode Protocol.Op.Jobs)) with
  | Ok Protocol.Op.Jobs -> ()
  | _ -> Alcotest.fail "jobs op must round-trip"

(* ---------- Journal: durable admissions, recovery, idempotency ---------- *)

module Journal = Qcr_net.Journal
module Fault = Qcr_fault.Fault

let dir_counter = ref 0

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let with_dir f =
  incr dir_counter;
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "qcr-test-journal-%d-%d" (Unix.getpid ()) !dir_counter)
  in
  rm_rf dir;
  Fun.protect
    ~finally:(fun () ->
      Fault.disarm ();
      rm_rf dir)
    (fun () -> f dir)

let open_journal dir =
  match Journal.open_dir dir with Ok j -> j | Error e -> Alcotest.fail ("Journal.open_dir: " ^ e)

(* A synthetic terminal reply — journal round-trips need content, not a
   real compile. *)
let fake_reply (r : Request.t) =
  {
    Reply.id = r.Request.id;
    key = "";
    requested_mode = r.Request.mode;
    outcome = Reply.Failed (Pipeline.Invalid_request "synthetic");
    cached = false;
    compile_ms = 0.0;
    trace = None;
  }

(* What one journal case writes: per job, an optional idempotency key
   and an optional terminal outcome; then the segment is optionally
   truncated or bit-flipped before replay. *)
type journal_mutation = Keep | Truncate of float | Flip of float

let journal_case_gen =
  QCheck.Gen.(
    list_size (int_range 1 6)
      (triple (float_range 0.0 1.0)
         (oneofl [ None; Some "k1"; Some "retry-x" ])
         (oneofl [ None; Some "done"; Some "canceled" ]))
    >>= fun jobs ->
    oneof
      [
        return Keep;
        map (fun f -> Truncate f) (float_range 0.0 1.0);
        map (fun f -> Flip f) (float_range 0.0 1.0);
      ]
    >>= fun mutation -> return (jobs, mutation))

let journal_case_print (jobs, mutation) =
  Printf.sprintf "%d jobs, %s" (List.length jobs)
    (match mutation with
    | Keep -> "kept intact"
    | Truncate f -> Printf.sprintf "truncated at %.2f" f
    | Flip f -> Printf.sprintf "bit-flipped at %.2f" f)

(* Replay returns exactly what was durably and validly written: with no
   mutation, everything; with a truncated or flipped segment, a subset —
   and never a record that differs from what was written. *)
let prop_journal_roundtrip =
  QCheck.Test.make ~name:"Journal replay = valid written records, corruption never replayed"
    ~count:40
    (QCheck.make journal_case_gen ~print:journal_case_print)
    (fun (jobs, mutation) ->
      with_dir @@ fun dir ->
      let written =
        List.mapi
          (fun i (gamma, idem, outcome) ->
            let r = req gamma ~id:(Printf.sprintf "r%d" i) in
            (i + 1, idem, r, Option.map (fun st -> (st, fake_reply r)) outcome))
          jobs
      in
      let jl = open_journal dir in
      List.iter
        (fun (seq, idem, r, outcome) ->
          (match Journal.admit jl ~seq ?idem r with
          | Ok () -> ()
          | Error e -> Alcotest.fail ("admit: " ^ e));
          Option.iter
            (fun (state, reply) ->
              match Journal.outcome jl ~seq ~state reply with
              | Ok () -> ()
              | Error e -> Alcotest.fail ("outcome: " ^ e))
            outcome)
        written;
      Journal.close jl;
      let seg = Filename.concat dir "jrn-000001.qcj" in
      let bytes =
        let ic = open_in_bin seg in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let mutated =
        let at frac = min (String.length bytes - 1) (int_of_float (frac *. float_of_int (String.length bytes))) in
        match mutation with
        | Keep -> bytes
        | Truncate frac -> String.sub bytes 0 (at frac)
        | Flip frac ->
            let b = Bytes.of_string bytes in
            let i = at frac in
            Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
            Bytes.to_string b
      in
      let oc = open_out_bin seg in
      output_string oc mutated;
      close_out oc;
      let jl2 = open_journal dir in
      let replayed = Journal.entries jl2 in
      Journal.close jl2;
      let matches_written (e : Journal.entry) =
        match List.find_opt (fun (seq, _, _, _) -> seq = e.Journal.e_seq) written with
        | None -> false
        | Some (_, idem, r, outcome) ->
            e.Journal.e_idem = idem
            && e.Journal.e_request = r
            && (match (e.Journal.e_outcome, outcome) with
               | None, _ -> true (* a lost outcome re-enqueues: safe *)
               | Some _, None -> false (* an invented outcome: never *)
               | Some (st, reply), Some (st', reply') ->
                   st = st'
                   && Json.to_string (Reply.to_json reply) = Json.to_string (Reply.to_json reply'))
      in
      List.for_all matches_written replayed
      && (mutation <> Keep
         || List.length replayed = List.length written
            && List.for_all
                 (fun (e : Journal.entry) ->
                   Option.is_some e.Journal.e_outcome
                   = List.exists
                       (fun (seq, _, _, o) -> seq = e.Journal.e_seq && Option.is_some o)
                       written)
                 replayed))

let test_jobs_idem_dedupe () =
  let s = Service.create () in
  let jobs = Jobs.create ~submit:(Service.submit s) () in
  let id = submit_ok jobs ~client:1 ~idem:"k1" (req 0.92) in
  (match Jobs.submit jobs ~client:2 ~idem:"k1" (req 0.92) with
  | Ok (Jobs.Deduped id') -> Alcotest.(check string) "dedupes to the original job" id id'
  | _ -> Alcotest.fail "resubmit with the same key must dedupe");
  Alcotest.(check int) "the dedupe admitted nothing" 1 (Jobs.queued jobs);
  ignore (Jobs.run_next jobs);
  (* still dedupes after completion, to the terminal job *)
  (match Jobs.submit jobs ~client:1 ~idem:"k1" (req 0.92) with
  | Ok (Jobs.Deduped id') -> (
      match Jobs.find jobs id' with
      | Some (Jobs.Done _) -> ()
      | _ -> Alcotest.fail "dedupe must land on the terminal job")
  | _ -> Alcotest.fail "a done job's key must still dedupe");
  let id2 = submit_ok jobs ~client:1 ~idem:"k2" (req 0.93) in
  Alcotest.(check bool) "a fresh key admits a fresh job" true (id2 <> id);
  (* a key whose job fell out of retention readmits instead of failing *)
  ignore (Jobs.take jobs id);
  (match Jobs.submit jobs ~client:1 ~idem:"k1" (req 0.92) with
  | Ok (Jobs.Admitted id3) -> Alcotest.(check bool) "evicted key readmits" true (id3 <> id)
  | _ -> Alcotest.fail "an evicted key must admit afresh");
  Alcotest.(check (float 1e-9)) "dedupes counted" 2.0 (num_field (Jobs.stats_json jobs) "deduped")

let test_jobs_retain_bytes () =
  let s = Service.create () in
  (* measure one terminal reply's serialized weight first *)
  let probe = Jobs.create ~submit:(Service.submit s) () in
  ignore (submit_ok probe ~client:1 (req 0.95));
  ignore (Jobs.run_next probe);
  let w = Jobs.retained_bytes probe in
  Alcotest.(check bool) "a terminal reply has weight" true (w > 0);
  (* byte bound of ~2.5 replies, count bound far away: bytes must evict *)
  let jobs =
    Jobs.create ~retain_done:100 ~retain_bytes:((5 * w) / 2) ~submit:(Service.submit s) ()
  in
  let ids =
    List.init 4 (fun k -> submit_ok jobs ~client:1 (req (0.95 +. (0.001 *. float_of_int k))))
  in
  List.iter (fun _ -> ignore (Jobs.run_next jobs)) ids;
  let retained id = Jobs.find jobs id <> None in
  (match ids with
  | [ a; b; c; d ] ->
      Alcotest.(check bool) "oldest evicted by the byte bound" false (retained a);
      Alcotest.(check bool) "second-oldest evicted by the byte bound" false (retained b);
      Alcotest.(check bool) "newest two fit the budget" true (retained c && retained d)
  | _ -> Alcotest.fail "expected four jobs");
  Alcotest.(check bool) "gauge within the bound" true
    (Jobs.retained_bytes jobs <= (5 * w) / 2);
  Alcotest.(check (float 1e-9)) "stats export the gauge"
    (float_of_int (Jobs.retained_bytes jobs))
    (num_field (Jobs.stats_json jobs) "retained_bytes")

let test_journal_recovery () =
  with_dir @@ fun dir ->
  let s = Service.create () in
  let j1 = open_journal dir in
  let jobs1 = Jobs.create ~journal:j1 ~submit:(Service.submit s) () in
  let a = submit_ok jobs1 ~client:1 ~idem:"ka" (req 0.96 ~id:"ra") in
  let b = submit_ok jobs1 ~client:1 (req 0.97 ~id:"rb") in
  let c = submit_ok jobs1 ~client:1 ~idem:"kc" (req 0.98 ~id:"rc") in
  let d = submit_ok jobs1 ~client:2 (req 0.99 ~id:"rd") in
  (* cancel while queued, then drain two: round-robin runs a then b *)
  ignore (Jobs.cancel jobs1 d);
  ignore (Jobs.run_next jobs1);
  ignore (Jobs.run_next jobs1);
  let reply_of jobs id =
    match Jobs.find jobs id with
    | Some (Jobs.Done r) | Some (Jobs.Canceled r) -> Json.to_string (Reply.to_json r)
    | _ -> Alcotest.fail ("job not terminal: " ^ id)
  in
  let done_a = reply_of jobs1 a and done_b = reply_of jobs1 b in
  (* kill -9 at the OCaml level: abandon both handles without any
     close/flush — appends were single write(2)s, so they are durable *)
  let j2 = open_journal dir in
  Alcotest.(check int) "clean journal replays with no skips" 0 (Journal.corrupt_skipped j2);
  let s2 = Service.create () in
  let jobs2 = Jobs.create ~journal:j2 ~submit:(Service.submit s2) () in
  Alcotest.(check int) "exactly the unfinished job recovered" 1 (Jobs.recovered jobs2);
  Alcotest.(check string) "done job restored bit-identically" done_a (reply_of jobs2 a);
  Alcotest.(check string) "second done job restored bit-identically" done_b (reply_of jobs2 b);
  (match Jobs.find jobs2 d with
  | Some (Jobs.Canceled _) -> ()
  | _ -> Alcotest.fail "canceled outcome must be restored as canceled");
  (match Jobs.find jobs2 c with
  | Some Jobs.Queued -> ()
  | _ -> Alcotest.fail "admitted-but-unfinished job must be re-enqueued");
  (match Jobs.run_next jobs2 with
  | Some (id, client, reply) ->
      Alcotest.(check string) "recovered job recomputes under the recovery client" c id;
      Alcotest.(check int) "recovered jobs belong to client 0" 0 client;
      Alcotest.(check string) "recomputed reply carries the request id" "rc" reply.Reply.id
  | None -> Alcotest.fail "the recovered job must run");
  (* numbering resumes above every replayed sequence *)
  Alcotest.(check string) "numbering resumes after replay" "j-5"
    (submit_ok jobs2 ~client:1 (req 0.995));
  (* idempotency keys survive the restart *)
  (match Jobs.submit jobs2 ~client:5 ~idem:"ka" (req 0.96 ~id:"ra") with
  | Ok (Jobs.Deduped id) -> Alcotest.(check string) "done key dedupes across restart" a id
  | _ -> Alcotest.fail "a restored done job's key must dedupe");
  (match Jobs.submit jobs2 ~client:5 ~idem:"kc" (req 0.98 ~id:"rc") with
  | Ok (Jobs.Deduped id) -> Alcotest.(check string) "recovered key dedupes across restart" c id
  | _ -> Alcotest.fail "a recovered job's key must dedupe");
  Journal.close j2

let test_journal_append_fault_refuses () =
  with_dir @@ fun dir ->
  let s = Service.create () in
  let j = open_journal dir in
  let jobs = Jobs.create ~journal:j ~submit:(Service.submit s) () in
  (match Fault.spec_of_string "seed=7,journal.append:crash:nth=2" with
  | Ok spec -> Fault.arm spec
  | Error e -> Alcotest.fail ("fault spec: " ^ e));
  let a = submit_ok jobs ~client:1 (req 0.961) in
  (* the second admission hits the injected crash: the job must be
     refused with a typed error, not acked without durability *)
  (match Jobs.submit jobs ~client:1 (req 0.962 ~id:"lost") with
  | Error r -> (
      Alcotest.(check string) "request id echoed" "lost" r.Reply.id;
      match r.Reply.outcome with
      | Reply.Failed (Pipeline.Internal msg) ->
          Alcotest.(check bool) "journal failure named" true
            (String.length msg >= 7 && String.sub msg 0 7 = "journal")
      | _ -> Alcotest.fail "expected a typed Internal failure")
  | Ok _ -> Alcotest.fail "an unjournaled admission must be refused");
  Fault.disarm ();
  (* the refused admission left no ghost: numbering continues densely *)
  let b = submit_ok jobs ~client:1 (req 0.963) in
  Alcotest.(check string) "refused admission reserved no id" "j-2" b;
  ignore (Jobs.run_next jobs);
  ignore (Jobs.run_next jobs);
  Journal.close j;
  let j2 = open_journal dir in
  let seqs = List.map (fun (e : Journal.entry) -> e.Journal.e_seq) (Journal.entries j2) in
  Alcotest.(check (list int)) "journal holds exactly the admitted jobs" [ 1; 2 ] seqs;
  Journal.close j2;
  ignore a

(* ---------- Loopback TCP integration ---------- *)

(* The server event loop owns the service; it runs in its own domain and
   is stopped through the [stop] callback, so every test exercises the
   graceful-drain path on the way out. *)
let with_server ?(max_queue = 64) ?(idle_timeout_s = 300.0) f =
  let service = Service.create () in
  let port = Atomic.make 0 in
  let stopping = Atomic.make false in
  let config =
    { Server.default_config with port = 0; tick_s = 0.002; max_queue; idle_timeout_s }
  in
  let dom =
    Domain.spawn (fun () ->
        Server.serve ~config
          ~on_listen:(fun p -> Atomic.set port p)
          ~stop:(fun () -> Atomic.get stopping)
          service)
  in
  let stop () =
    Atomic.set stopping true;
    Domain.join dom
  in
  let deadline = Unix.gettimeofday () +. 10.0 in
  while Atomic.get port = 0 && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.001
  done;
  if Atomic.get port = 0 then begin
    stop ();
    Alcotest.fail "server never started listening"
  end;
  Fun.protect ~finally:stop (fun () -> f service (Atomic.get port))

let with_client port f =
  let c = Client.connect ~port () in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let test_tcp_compile_matches_direct () =
  with_server (fun _ port ->
      with_client port (fun c ->
          let direct = Service.create () in
          List.iter
            (fun gamma ->
              let r = req gamma ~id:"probe" in
              let wire = ok_or_fail (Client.request c (Protocol.encode (Protocol.Op.Compile r))) in
              check_stamped wire;
              let expect = Reply.to_json (Service.submit direct r) in
              Alcotest.(check string) "wire reply bit-identical to in-process service"
                (Json.to_string (normalize expect))
                (Json.to_string (normalize wire)))
            (* repeat 0.61: one side of the comparison is a cache hit *)
            [ 0.61; 0.62; 0.61 ]))

let test_tcp_job_lifecycle () =
  with_server (fun _ port ->
      with_client port (fun c ->
          let sub = ok_or_fail (Client.request c (Protocol.encode (Protocol.Op.Submit (req 0.63, None)))) in
          check_stamped sub;
          let id = str_field sub "job" in
          Alcotest.(check string) "admitted as queued" "queued" (str_field sub "state");
          let w = ok_or_fail (Client.request c (Protocol.encode (Protocol.Op.Wait id))) in
          Alcotest.(check string) "wait returns the terminal state" "done" (str_field w "state");
          (match Json.member "reply" w with
          | Some r ->
              check_stamped r;
              Alcotest.(check string) "compiled ok" "ok" (str_field r "status")
          | None -> Alcotest.fail "terminal reply embeds the compile reply");
          let res = ok_or_fail (Client.request c (Protocol.encode (Protocol.Op.Result id))) in
          Alcotest.(check string) "result fetches the reply" "done" (str_field res "state");
          let again = ok_or_fail (Client.request c (Protocol.encode (Protocol.Op.Result id))) in
          (match Json.member "error" again with
          | Some err ->
              Alcotest.(check string) "result is fetch-and-forget" "unknown_job"
                (str_field err "kind")
          | None -> Alcotest.fail "second result must be a typed unknown_job");
          let p = ok_or_fail (Client.request c (Protocol.encode (Protocol.Op.Poll "j-77"))) in
          match Json.member "error" p with
          | Some err ->
              Alcotest.(check string) "unknown id is typed" "unknown_job" (str_field err "kind")
          | None -> Alcotest.fail "poll of an unknown id must be a typed error"))

(* Batching submit+cancel lines in one write makes the ordering exact:
   the event loop drains every line of a read before running a job, so
   j-2 is canceled while still queued. *)
let test_tcp_cancel_before_run () =
  with_server (fun _ port ->
      with_client port (fun c ->
          let lines =
            [
              Json.to_string (Protocol.encode (Protocol.Op.Submit (req 0.64 ~id:"keep", None)));
              Json.to_string (Protocol.encode (Protocol.Op.Submit (req 0.65 ~id:"kill", None)));
              Json.to_string (Protocol.encode (Protocol.Op.Cancel "j-2"));
            ]
          in
          Client.send_line c (String.concat "\n" lines);
          let r1 = ok_or_fail (Client.recv c) in
          let r2 = ok_or_fail (Client.recv c) in
          let rc = ok_or_fail (Client.recv c) in
          Alcotest.(check string) "first admitted" "queued" (str_field r1 "state");
          Alcotest.(check string) "second admitted" "queued" (str_field r2 "state");
          Alcotest.(check string) "canceled while queued" "canceled" (str_field rc "state");
          (match Json.member "reply" rc with
          | Some r -> (
              Alcotest.(check string) "request id echoed" "kill" (str_field r "id");
              match Json.member "error" r with
              | Some err -> Alcotest.(check string) "typed error" "canceled" (str_field err "kind")
              | None -> Alcotest.fail "canceled reply carries the typed error")
          | None -> Alcotest.fail "cancel reply embeds the canceled compile reply");
          (* the survivor still completes *)
          let w = ok_or_fail (Client.request c (Protocol.encode (Protocol.Op.Wait "j-1"))) in
          Alcotest.(check string) "survivor done" "done" (str_field w "state")))

let test_tcp_overload_sheds () =
  with_server ~max_queue:2 (fun _ port ->
      with_client port (fun c ->
          let lines =
            List.init 4 (fun k ->
                Json.to_string
                  (Protocol.encode
                     (Protocol.Op.Submit (req (0.66 +. (0.01 *. float_of_int k)), None))))
          in
          (* one write: all four admissions happen before any job runs *)
          Client.send_line c (String.concat "\n" lines);
          let state_of j =
            match Json.member "job" j with
            | Some _ -> str_field j "state"
            | None -> (
                match Json.member "error" j with
                | Some err -> str_field err "kind"
                | None -> Alcotest.fail ("unexpected reply " ^ Json.to_string j))
          in
          let states = List.init 4 (fun _ -> state_of (ok_or_fail (Client.recv c))) in
          Alcotest.(check (list string)) "beyond the limit, typed Overloaded"
            [ "queued"; "queued"; "overloaded"; "overloaded" ]
            states;
          (* admitted work still completes; shed work left no ghost jobs *)
          let w = ok_or_fail (Client.request c (Protocol.encode (Protocol.Op.Wait "j-2"))) in
          Alcotest.(check string) "admitted jobs complete" "done" (str_field w "state");
          let stats = ok_or_fail (Client.request c (Protocol.encode Protocol.Op.Stats)) in
          match Json.member "jobs" stats with
          | Some jstats ->
              Alcotest.(check (float 1e-9)) "shed count" 2.0 (num_field jstats "shed");
              Alcotest.(check (float 1e-9)) "submitted count" 2.0 (num_field jstats "submitted")
          | None -> Alcotest.fail "stats reply must carry the jobs block"))

(* Several connections with interleaved async traffic: every reply must
   be bit-identical to what a private in-process service produces for
   the same request. *)
let test_tcp_concurrent_clients_bit_identical () =
  with_server (fun _ port ->
      let n_clients = 5 and per_client = 3 in
      let gamma i k = 0.1 +. (0.01 *. float_of_int ((i * per_client) + k)) in
      let rid i k = Printf.sprintf "c%d-%d" i k in
      let clients = Array.init n_clients (fun _ -> Client.connect ~port ()) in
      Fun.protect
        ~finally:(fun () -> Array.iter Client.close clients)
        (fun () ->
          (* every client fires its whole burst before anyone reads *)
          Array.iteri
            (fun i c ->
              let lines =
                List.init per_client (fun k ->
                    Json.to_string
                      (Protocol.encode (Protocol.Op.Submit (req (gamma i k) ~id:(rid i k), None))))
              in
              Client.send_line c (String.concat "\n" lines))
            clients;
          let ids =
            Array.map
              (fun c ->
                List.init per_client (fun _ ->
                    let j = ok_or_fail (Client.recv c) in
                    Alcotest.(check string) "admitted" "queued" (str_field j "state");
                    str_field j "job"))
              clients
          in
          let direct = Service.create () in
          Array.iteri
            (fun i c ->
              List.iteri
                (fun k id ->
                  let w = ok_or_fail (Client.request c (Protocol.encode (Protocol.Op.Wait id))) in
                  Alcotest.(check string) "job done" "done" (str_field w "state");
                  let wire =
                    match Json.member "reply" w with
                    | Some r -> r
                    | None -> Alcotest.fail "terminal wait embeds the reply"
                  in
                  let expect = Reply.to_json (Service.submit direct (req (gamma i k) ~id:(rid i k))) in
                  Alcotest.(check string)
                    (Printf.sprintf "client %d job %d bit-identical to direct service" i k)
                    (Json.to_string (normalize expect))
                    (Json.to_string (normalize wire)))
                ids.(i))
            clients))

let test_tcp_disconnect_cancels () =
  with_server (fun _ port ->
      let c = Client.connect ~port () in
      let lines =
        List.init 3 (fun k ->
            Json.to_string
              (Protocol.encode (Protocol.Op.Submit (req (0.71 +. (0.01 *. float_of_int k)), None))))
      in
      Client.send_line c (String.concat "\n" lines);
      (* vanish without reading a single reply: the server must cancel
         whatever it had not started for this client *)
      Client.close c;
      with_client port (fun c2 ->
          let deadline = Unix.gettimeofday () +. 10.0 in
          let rec settle () =
            let stats = ok_or_fail (Client.request c2 (Protocol.encode Protocol.Op.Stats)) in
            let jstats =
              match Json.member "jobs" stats with
              | Some j -> j
              | None -> Alcotest.fail "stats reply must carry the jobs block"
            in
            let completed = num_field jstats "completed" and canceled = num_field jstats "canceled" in
            if completed +. canceled >= 3.0 then (jstats, completed, canceled)
            else if Unix.gettimeofday () > deadline then
              Alcotest.fail "orphaned jobs never settled after disconnect"
            else begin
              Unix.sleepf 0.005;
              settle ()
            end
          in
          let jstats, completed, canceled = settle () in
          Alcotest.(check (float 1e-9)) "every job accounted for" 3.0 (completed +. canceled);
          Alcotest.(check bool) "at least one canceled by the disconnect" true (canceled >= 1.0);
          Alcotest.(check (float 1e-9)) "nothing left queued" 0.0 (num_field jstats "queued")))

let test_tcp_v1_lines () =
  with_server (fun _ port ->
      with_client port (fun c ->
          (* a pre-v2 client: bare request object, unversioned op lines *)
          Client.send_line c (Json.to_string (Request.to_json (req 0.74 ~id:"legacy")));
          let r = ok_or_fail (Client.recv c) in
          check_stamped r;
          Alcotest.(check string) "v1 compile served" "ok" (str_field r "status");
          Alcotest.(check string) "id echoed" "legacy" (str_field r "id");
          Client.send_line c {|{"op":"health"}|};
          let h = ok_or_fail (Client.recv c) in
          check_stamped h;
          Alcotest.(check string) "v1 health ok" "ok" (str_field h "status")))

let test_tcp_bad_lines_keep_connection () =
  with_server (fun _ port ->
      with_client port (fun c ->
          let error_kind line =
            Client.send_line c line;
            let j = ok_or_fail (Client.recv c) in
            check_stamped j;
            match Json.member "error" j with
            | Some err -> str_field err "kind"
            | None -> Alcotest.fail ("expected an error reply, got " ^ Json.to_string j)
          in
          Alcotest.(check string) "garbage line" "malformed" (error_kind "}{ not json");
          Alcotest.(check string) "unknown op" "unknown_op" (error_kind {|{"v":2,"op":"zap"}|});
          Alcotest.(check string) "future version" "bad_version"
            (error_kind {|{"v":9,"op":"health"}|});
          (* the connection survived all three *)
          let h = ok_or_fail (Client.request c (Protocol.encode Protocol.Op.Health)) in
          Alcotest.(check string) "still serving" "ok" (str_field h "status")))

let test_tcp_idle_timeout () =
  with_server ~idle_timeout_s:0.05 (fun _ port ->
      with_client port (fun c ->
          match Client.recv_line ~timeout_s:10.0 c with
          | Error "eof" -> ()
          | Error e -> Alcotest.fail ("expected idle close, got error " ^ e)
          | Ok l -> Alcotest.fail ("expected idle close, got line " ^ l)))

(* Stop the server while jobs are queued and a wait is parked: graceful
   drain must run the admitted jobs, answer the wait, and flush before
   closing. *)
let test_tcp_graceful_drain () =
  let service = Service.create () in
  let port = Atomic.make 0 in
  let stopping = Atomic.make false in
  let config = { Server.default_config with port = 0; tick_s = 0.002 } in
  let dom =
    Domain.spawn (fun () ->
        Server.serve ~config
          ~on_listen:(fun p -> Atomic.set port p)
          ~stop:(fun () -> Atomic.get stopping)
          service)
  in
  while Atomic.get port = 0 do
    Unix.sleepf 0.001
  done;
  let c = Client.connect ~port:(Atomic.get port) () in
  let lines =
    List.init 3 (fun k ->
        Json.to_string (Protocol.encode (Protocol.Op.Submit (req (0.81 +. (0.01 *. float_of_int k)), None))))
    @ [ Json.to_string (Protocol.encode (Protocol.Op.Wait "j-3")) ]
  in
  Client.send_line c (String.concat "\n" lines);
  (* wait for the admissions so stop cannot beat the reads, then pull the
     rug: the drain owes us the parked wait and any still-queued jobs *)
  List.iter
    (fun _ ->
      let j = ok_or_fail (Client.recv c) in
      Alcotest.(check string) "admission reply delivered" "queued" (str_field j "state"))
    [ 1; 2; 3 ];
  Atomic.set stopping true;
  Domain.join dom;
  let w = ok_or_fail (Client.recv c) in
  Alcotest.(check string) "parked wait answered during drain" "done" (str_field w "state");
  (match Client.recv_line c with
  | Error ("eof" | "eof mid-line") -> ()
  | Error e -> Alcotest.fail ("expected close after drain, got error " ^ e)
  | Ok l -> Alcotest.fail ("unexpected extra line " ^ l));
  Client.close c;
  Alcotest.(check int) "all admitted jobs compiled during drain" 3
    (Service.stats service).Service.requests

(* Regression: a client whose jobs are still queued or running must not
   be idle-closed (the close would cancel its queue).  The timeout is
   far shorter than the burst's drain time, so without the exemption the
   sweep fires mid-drain and cancels admitted work.  Progress is watched
   through short-lived polling connections that cannot themselves go
   idle. *)
let test_tcp_idle_exemption () =
  let n = 60 in
  with_server ~idle_timeout_s:0.02 (fun _ port ->
      with_client port (fun c ->
          let lines =
            List.init n (fun k ->
                Json.to_string
                  (Protocol.encode
                     (Protocol.Op.Submit (req (0.3 +. (0.001 *. float_of_int k)), None))))
          in
          Client.send_line c (String.concat "\n" lines);
          List.iter
            (fun _ ->
              let j = ok_or_fail (Client.recv c) in
              Alcotest.(check string) "admitted" "queued" (str_field j "state"))
            (List.init n Fun.id);
          (* now go silent and let the drain outlive the idle timeout *)
          let deadline = Unix.gettimeofday () +. 20.0 in
          let rec settle () =
            let jstats =
              with_client port (fun c2 ->
                  let stats = ok_or_fail (Client.request c2 (Protocol.encode Protocol.Op.Stats)) in
                  match Json.member "jobs" stats with
                  | Some j -> j
                  | None -> Alcotest.fail "stats reply must carry the jobs block")
            in
            let completed = num_field jstats "completed" and canceled = num_field jstats "canceled" in
            if completed +. canceled >= float_of_int n then (completed, canceled)
            else if Unix.gettimeofday () > deadline then Alcotest.fail "burst never settled"
            else begin
              Unix.sleepf 0.005;
              settle ()
            end
          in
          let completed, canceled = settle () in
          Alcotest.(check (float 1e-9))
            "no job of the silent-but-busy client was canceled by the idle sweep" 0.0 canceled;
          Alcotest.(check (float 1e-9)) "every admitted job compiled" (float_of_int n) completed))

let test_tcp_jobs_op_and_dedup () =
  with_server (fun _ port ->
      with_client port (fun c ->
          let sub =
            ok_or_fail
              (Client.request c
                 (Protocol.encode (Protocol.Op.Submit (req 0.85 ~id:"idem-int", Some "net-k1"))))
          in
          let id = str_field sub "job" in
          let w = ok_or_fail (Client.request c (Protocol.encode (Protocol.Op.Wait id))) in
          Alcotest.(check string) "job done" "done" (str_field w "state");
          (* resubmit under the same key: same job, flagged, terminal *)
          let again =
            ok_or_fail
              (Client.request c
                 (Protocol.encode (Protocol.Op.Submit (req 0.85 ~id:"idem-int", Some "net-k1"))))
          in
          check_stamped again;
          Alcotest.(check string) "dedupes to the original job" id (str_field again "job");
          Alcotest.(check string) "reports the terminal state" "done" (str_field again "state");
          (match Json.member "dedup" again with
          | Some (Json.Bool true) -> ()
          | _ -> Alcotest.fail "dedupe replies carry the dedup flag");
          (* jobs introspection lists the job with its key *)
          let jl = ok_or_fail (Client.request c (Protocol.encode Protocol.Op.Jobs)) in
          check_stamped jl;
          (match Json.member "jobs" jl with
          | Some (Json.Arr l) ->
              let found =
                List.exists
                  (fun e ->
                    str_field e "job" = id
                    && str_field e "state" = "done"
                    && Json.member "idem" e = Some (Json.Str "net-k1"))
                  l
              in
              Alcotest.(check bool) "jobs op lists the job with state and key" true found
          | _ -> Alcotest.fail "jobs reply must carry the jobs array");
          match Json.member "counts" jl with
          | Some counts ->
              Alcotest.(check (float 1e-9)) "dedupe counted" 1.0 (num_field counts "deduped")
          | None -> Alcotest.fail "jobs reply must carry the counts block"))

let test_client_submit_idempotent () =
  with_server (fun _ port ->
      let r = req 0.87 ~id:"retry" in
      let fin1 =
        match Client.submit_idempotent ~port ~idem:"cli-k" r with
        | Ok j -> j
        | Error e -> Alcotest.fail ("submit_idempotent: " ^ e)
      in
      Alcotest.(check string) "terminal state" "done" (str_field fin1 "state");
      let fin2 =
        match Client.submit_idempotent ~port ~idem:"cli-k" r with
        | Ok j -> j
        | Error e -> Alcotest.fail ("resubmit: " ^ e)
      in
      Alcotest.(check string) "the retry lands on the same job" (str_field fin1 "job")
        (str_field fin2 "job");
      (* a dead port exhausts its attempts as a typed error *)
      match Client.submit_idempotent ~port:1 ~attempts:2 ~timeout_s:0.2 ~idem:"k" r with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "a dead port cannot succeed")

(* One journaled server incarnation; the caller owns the directory so a
   later incarnation can replay it. *)
let with_journal_server ~dir f =
  let service = Service.create () in
  let journal = open_journal dir in
  let port = Atomic.make 0 in
  let stopping = Atomic.make false in
  let config = { Server.default_config with port = 0; tick_s = 0.002 } in
  let dom =
    Domain.spawn (fun () ->
        Server.serve ~config ~journal
          ~on_listen:(fun p -> Atomic.set port p)
          ~stop:(fun () -> Atomic.get stopping)
          service)
  in
  let stop () =
    Atomic.set stopping true;
    Domain.join dom;
    Journal.close journal
  in
  let deadline = Unix.gettimeofday () +. 10.0 in
  while Atomic.get port = 0 && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.001
  done;
  if Atomic.get port = 0 then begin
    stop ();
    Alcotest.fail "journaled server never started listening"
  end;
  Fun.protect ~finally:stop (fun () -> f service (Atomic.get port))

(* Two server incarnations over one journal directory: the second must
   restore finished jobs bit-identically from the journal (its service
   never compiled them), recompute an admission whose outcome was never
   written, and dedupe idempotent resubmits to the original job ids. *)
let test_tcp_journal_restart () =
  with_dir @@ fun dir ->
  let expect = ref "" in
  with_journal_server ~dir (fun _ port ->
      with_client port (fun c ->
          let sub =
            ok_or_fail
              (Client.request c
                 (Protocol.encode (Protocol.Op.Submit (req 0.41 ~id:"ra", Some "ka"))))
          in
          Alcotest.(check string) "first incarnation admits j-1" "j-1" (str_field sub "job");
          let w = ok_or_fail (Client.request c (Protocol.encode (Protocol.Op.Wait "j-1"))) in
          Alcotest.(check string) "done before the restart" "done" (str_field w "state");
          match Json.member "reply" w with
          | Some r -> expect := Json.to_string (normalize r)
          | None -> Alcotest.fail "terminal wait embeds the reply"));
  (* model a crash after an admission but before its outcome: append the
     admit record directly, as a server killed mid-job would have left it *)
  let j = open_journal dir in
  let seq_b = Journal.max_seq j + 1 in
  (match Journal.admit j ~seq:seq_b ~idem:"kb" (req 0.42 ~id:"rb") with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("admit: " ^ e));
  Journal.close j;
  with_journal_server ~dir (fun _ port ->
      with_client port (fun c ->
          (* pre-crash keys dedupe across the restart *)
          let again =
            ok_or_fail
              (Client.request c
                 (Protocol.encode (Protocol.Op.Submit (req 0.41 ~id:"ra", Some "ka"))))
          in
          Alcotest.(check string) "idempotent resubmit lands on the original job" "j-1"
            (str_field again "job");
          Alcotest.(check string) "restored as done" "done" (str_field again "state");
          (* the orphaned admission recomputes to terminal *)
          let idb = Printf.sprintf "j-%d" seq_b in
          let w = ok_or_fail (Client.request c (Protocol.encode (Protocol.Op.Wait idb))) in
          Alcotest.(check string) "recovered job recomputed" "done" (str_field w "state");
          (match Json.member "reply" w with
          | Some r ->
              Alcotest.(check string) "request id survived the crash" "rb" (str_field r "id")
          | None -> Alcotest.fail "terminal wait embeds the reply");
          (* and the finished job's reply is the journaled bytes *)
          let res = ok_or_fail (Client.request c (Protocol.encode (Protocol.Op.Result "j-1"))) in
          match Json.member "reply" res with
          | Some r ->
              Alcotest.(check string) "restored reply bit-identical to the pre-crash reply"
                !expect
                (Json.to_string (normalize r))
          | None -> Alcotest.fail "result embeds the reply"))

let suite =
  [
    Alcotest.test_case "jobs fair order" `Quick test_jobs_fair_order;
    Alcotest.test_case "jobs overload" `Quick test_jobs_overload;
    Alcotest.test_case "jobs cancel" `Quick test_jobs_cancel;
    Alcotest.test_case "jobs drop client" `Quick test_jobs_drop_client;
    Alcotest.test_case "jobs retention" `Quick test_jobs_retention;
    QCheck_alcotest.to_alcotest prop_op_roundtrip;
    Alcotest.test_case "protocol v1 compat" `Quick test_protocol_v1_compat;
    Alcotest.test_case "protocol typed errors" `Quick test_protocol_typed_errors;
    Alcotest.test_case "protocol reply stamping" `Quick test_protocol_reply_stamping;
    Alcotest.test_case "protocol idem and jobs ops" `Quick test_protocol_idem_and_jobs;
    QCheck_alcotest.to_alcotest prop_journal_roundtrip;
    Alcotest.test_case "jobs idem dedupe" `Quick test_jobs_idem_dedupe;
    Alcotest.test_case "jobs retain bytes" `Quick test_jobs_retain_bytes;
    Alcotest.test_case "journal recovery" `Quick test_journal_recovery;
    Alcotest.test_case "journal append fault refuses" `Quick test_journal_append_fault_refuses;
    Alcotest.test_case "tcp compile matches direct" `Quick test_tcp_compile_matches_direct;
    Alcotest.test_case "tcp job lifecycle" `Quick test_tcp_job_lifecycle;
    Alcotest.test_case "tcp cancel before run" `Quick test_tcp_cancel_before_run;
    Alcotest.test_case "tcp overload sheds" `Quick test_tcp_overload_sheds;
    Alcotest.test_case "tcp concurrent clients bit-identical" `Quick
      test_tcp_concurrent_clients_bit_identical;
    Alcotest.test_case "tcp disconnect cancels" `Quick test_tcp_disconnect_cancels;
    Alcotest.test_case "tcp v1 lines" `Quick test_tcp_v1_lines;
    Alcotest.test_case "tcp bad lines keep connection" `Quick test_tcp_bad_lines_keep_connection;
    Alcotest.test_case "tcp idle timeout" `Quick test_tcp_idle_timeout;
    Alcotest.test_case "tcp idle exemption for busy clients" `Quick test_tcp_idle_exemption;
    Alcotest.test_case "tcp jobs op and dedup" `Quick test_tcp_jobs_op_and_dedup;
    Alcotest.test_case "client submit idempotent" `Quick test_client_submit_idempotent;
    Alcotest.test_case "tcp journal restart" `Quick test_tcp_journal_restart;
    Alcotest.test_case "tcp graceful drain" `Quick test_tcp_graceful_drain;
  ]
