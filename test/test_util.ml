module Prng = Qcr_util.Prng
module Pqueue = Qcr_util.Pqueue
module Bitset = Qcr_util.Bitset
module Union_find = Qcr_util.Union_find
module Stats = Qcr_util.Stats
module Tablefmt = Qcr_util.Tablefmt
module Lru = Qcr_util.Lru
module Sharded_cache = Qcr_util.Sharded_cache
module Pool = Qcr_par.Pool

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_bounds () =
  let rng = Prng.create 7 in
  for _ = 1 to 1000 do
    let x = Prng.int rng 10 in
    Alcotest.(check bool) "int in range" true (x >= 0 && x < 10);
    let f = Prng.float rng 2.5 in
    Alcotest.(check bool) "float in range" true (f >= 0.0 && f < 2.5)
  done

let test_prng_split_independent () =
  let parent = Prng.create 1 in
  let child = Prng.split parent in
  let a = Prng.bits64 child and b = Prng.bits64 parent in
  Alcotest.(check bool) "distinct streams" true (a <> b)

(* Statistical smoke test for [split_n]: the per-trajectory child streams
   must look mutually independent — distinct openings, uniform marginals,
   and no pairwise correlation between sibling streams. *)
let test_prng_split_n_statistics () =
  let n_children = 64 and draws = 512 in
  let rngs = Prng.split_n (Prng.create 42) n_children in
  Alcotest.(check int) "child count" n_children (Array.length rngs);
  let first = Array.map Prng.bits64 rngs in
  let module S = Set.Make (Int64) in
  Alcotest.(check int) "distinct first draws"
    n_children
    (S.cardinal (Array.fold_left (fun s x -> S.add x s) S.empty first));
  let samples =
    Array.map (fun rng -> Array.init draws (fun _ -> Prng.float rng 1.0)) rngs
  in
  Array.iteri
    (fun i xs ->
      let mean = Stats.mean xs in
      Alcotest.(check bool)
        (Printf.sprintf "child %d mean near 0.5" i)
        true
        (abs_float (mean -. 0.5) < 0.1))
    samples;
  (* Pearson correlation between adjacent siblings: for 512 iid uniform
     pairs the sample correlation is ~N(0, 1/sqrt 512); |r| < 0.2 is a
     > 6-sigma envelope, so this only trips on real stream coupling. *)
  for i = 0 to n_children - 2 do
    let xs = samples.(i) and ys = samples.(i + 1) in
    let mx = Stats.mean xs and my = Stats.mean ys in
    let num = ref 0.0 and dx2 = ref 0.0 and dy2 = ref 0.0 in
    for k = 0 to draws - 1 do
      let dx = xs.(k) -. mx and dy = ys.(k) -. my in
      num := !num +. (dx *. dy);
      dx2 := !dx2 +. (dx *. dx);
      dy2 := !dy2 +. (dy *. dy)
    done;
    let r = !num /. sqrt (!dx2 *. !dy2) in
    Alcotest.(check bool)
      (Printf.sprintf "siblings %d,%d uncorrelated" i (i + 1))
      true
      (abs_float r < 0.2)
  done

let test_prng_split_n_edge_cases () =
  Alcotest.(check int) "zero children" 0 (Array.length (Prng.split_n (Prng.create 1) 0));
  Alcotest.check_raises "negative children"
    (Invalid_argument "Prng.split_n: negative count") (fun () ->
      ignore (Prng.split_n (Prng.create 1) (-1)));
  (* splitting is deterministic: same seed, same child streams *)
  let a = Prng.split_n (Prng.create 9) 5 and b = Prng.split_n (Prng.create 9) 5 in
  Array.iter2
    (fun x y -> Alcotest.(check int64) "deterministic child" (Prng.bits64 x) (Prng.bits64 y))
    a b

let test_prng_shuffle_permutes () =
  let rng = Prng.create 3 in
  let a = Array.init 50 (fun i -> i) in
  Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 50 (fun i -> i)) sorted

let test_prng_gaussian_moments () =
  let rng = Prng.create 5 in
  let samples = Array.init 20000 (fun _ -> Prng.gaussian rng ~mu:2.0 ~sigma:0.5) in
  let mean = Stats.mean samples in
  let sd = Stats.stddev samples in
  Alcotest.(check bool) "mean near 2" true (abs_float (mean -. 2.0) < 0.02);
  Alcotest.(check bool) "sd near 0.5" true (abs_float (sd -. 0.5) < 0.02)

let test_pqueue_basic () =
  let q = Pqueue.create () in
  Alcotest.(check bool) "empty" true (Pqueue.is_empty q);
  Pqueue.push q ~prio:3 "c";
  Pqueue.push q ~prio:1 "a";
  Pqueue.push q ~prio:2 "b";
  Alcotest.(check (option (pair int string))) "peek" (Some (1, "a")) (Pqueue.peek q);
  Alcotest.(check (pair int string)) "pop1" (1, "a") (Pqueue.pop_exn q);
  Alcotest.(check (pair int string)) "pop2" (2, "b") (Pqueue.pop_exn q);
  Alcotest.(check (pair int string)) "pop3" (3, "c") (Pqueue.pop_exn q);
  Alcotest.(check (option (pair int string))) "drained" None (Pqueue.pop q)

let test_pqueue_fifo_ties () =
  let q = Pqueue.create () in
  Pqueue.push q ~prio:1 "first";
  Pqueue.push q ~prio:1 "second";
  Pqueue.push q ~prio:1 "third";
  Alcotest.(check string) "tie order" "first" (snd (Pqueue.pop_exn q));
  Alcotest.(check string) "tie order" "second" (snd (Pqueue.pop_exn q));
  Alcotest.(check string) "tie order" "third" (snd (Pqueue.pop_exn q))

let prop_pqueue_sorted =
  QCheck.Test.make ~name:"pqueue pops in priority order" ~count:200
    QCheck.(list (int_bound 1000))
    (fun prios ->
      let q = Pqueue.create () in
      List.iter (fun p -> Pqueue.push q ~prio:p p) prios;
      let rec drain acc =
        match Pqueue.pop q with None -> List.rev acc | Some (p, _) -> drain (p :: acc)
      in
      let out = drain [] in
      out = List.sort compare prios)

let test_bitset_basic () =
  let b = Bitset.create 100 in
  Alcotest.(check bool) "empty" true (Bitset.is_empty b);
  Bitset.add b 0;
  Bitset.add b 63;
  Bitset.add b 99;
  Alcotest.(check int) "cardinal" 3 (Bitset.cardinal b);
  Alcotest.(check bool) "mem 63" true (Bitset.mem b 63);
  Alcotest.(check bool) "not mem 64" false (Bitset.mem b 64);
  Bitset.remove b 63;
  Alcotest.(check bool) "removed" false (Bitset.mem b 63);
  Alcotest.(check (list int)) "to_list" [ 0; 99 ] (Bitset.to_list b)

let test_bitset_copy_independent () =
  let a = Bitset.create 10 in
  Bitset.add a 5;
  let b = Bitset.copy a in
  Bitset.remove b 5;
  Alcotest.(check bool) "copy independent" true (Bitset.mem a 5 && not (Bitset.mem b 5))

let prop_bitset_add_mem =
  QCheck.Test.make ~name:"bitset add/mem agree with a set" ~count:200
    QCheck.(list (int_bound 199))
    (fun xs ->
      let b = Bitset.create 200 in
      List.iter (Bitset.add b) xs;
      let reference = List.sort_uniq compare xs in
      Bitset.to_list b = reference && Bitset.cardinal b = List.length reference)

let test_union_find () =
  let uf = Union_find.create 6 in
  Alcotest.(check int) "initial components" 6 (Union_find.count uf);
  Union_find.union uf 0 1;
  Union_find.union uf 2 3;
  Union_find.union uf 1 2;
  Alcotest.(check bool) "same 0 3" true (Union_find.same uf 0 3);
  Alcotest.(check bool) "not same 0 4" false (Union_find.same uf 0 4);
  Alcotest.(check int) "components" 3 (Union_find.count uf)

let test_stats () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stats.mean [| 1.0; 2.0; 3.0 |]);
  Alcotest.(check (float 1e-9)) "median odd" 2.0 (Stats.median [| 3.0; 1.0; 2.0 |]);
  Alcotest.(check (float 1e-9)) "median even" 2.5 (Stats.median [| 1.0; 2.0; 3.0; 4.0 |]);
  Alcotest.(check (float 1e-9)) "geomean" 2.0 (Stats.geomean [| 1.0; 4.0 |]);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.minimum [| 3.0; 1.0 |]);
  Alcotest.(check (float 1e-9)) "max" 3.0 (Stats.maximum [| 3.0; 1.0 |]);
  let norm = Stats.normalize ~baseline:[| 2.0; 4.0 |] [| 1.0; 2.0 |] in
  Alcotest.(check (array (float 1e-9))) "normalize" [| 0.5; 0.5 |] norm

let test_tablefmt () =
  let t = Tablefmt.create [ "name"; "value" ] in
  Tablefmt.add_row t [ "alpha"; "1" ];
  Tablefmt.add_row t [ "b" ];
  let s = Tablefmt.render t in
  Alcotest.(check bool) "has header" true (String.length s > 0);
  Alcotest.(check bool) "contains row" true
    (String.length s >= 5 && String.index_opt s 'a' <> None);
  Alcotest.(check string) "int cell" "42" (Tablefmt.cell_int 42);
  Alcotest.(check string) "ratio cell" "0.50" (Tablefmt.cell_ratio 0.5)

(* ---------- Lru ---------- *)

let test_lru_capacity_zero () =
  let c = Lru.create ~capacity:0 in
  Lru.add c "a" 1;
  Alcotest.(check int) "stores nothing" 0 (Lru.length c);
  Alcotest.(check (option int)) "find misses" None (Lru.find c "a");
  Alcotest.(check (option (pair string int))) "pop_lru on empty" None (Lru.pop_lru c);
  Alcotest.check_raises "negative capacity rejected"
    (Invalid_argument "Lru.create: capacity must be non-negative") (fun () ->
      ignore (Lru.create ~capacity:(-1)))

let test_lru_capacity_one () =
  let c = Lru.create ~capacity:1 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  Alcotest.(check int) "holds one entry" 1 (Lru.length c);
  Alcotest.(check (option int)) "a evicted" None (Lru.find c "a");
  Alcotest.(check (option int)) "b present" (Some 2) (Lru.find c "b")

let test_lru_eviction_order () =
  let c = Lru.create ~capacity:3 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  Lru.add c "c" 3;
  (* promote [a]: [b] is now least recently used *)
  ignore (Lru.find c "a");
  Lru.add c "d" 4;
  Alcotest.(check (option int)) "b evicted, not a" None (Lru.peek c "b");
  Alcotest.(check (option int)) "a survives its promotion" (Some 1) (Lru.peek c "a");
  Alcotest.(check (option (pair string int))) "c is now LRU" (Some ("c", 3)) (Lru.pop_lru c);
  Alcotest.(check int) "pop removed it" 2 (Lru.length c)

let test_lru_overwrite_refreshes () =
  let c = Lru.create ~capacity:2 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  (* overwriting [a] must refresh its recency and replace its value *)
  Lru.add c "a" 10;
  Lru.add c "c" 3;
  Alcotest.(check (option int)) "b evicted as LRU" None (Lru.peek c "b");
  Alcotest.(check (option int)) "a kept with new value" (Some 10) (Lru.peek c "a")

(* ---------- Sharded_cache ---------- *)

let test_sharded_clamps_to_capacity () =
  let c = Sharded_cache.create ~shards:16 ~capacity:1 () in
  Alcotest.(check int) "one shard for capacity 1" 1 (Sharded_cache.shard_count c);
  Sharded_cache.add c "a" 1;
  Sharded_cache.add c "b" 2;
  Alcotest.(check int) "strict LRU at capacity 1" 1 (Sharded_cache.length c);
  Alcotest.(check (option int)) "a evicted" None (Sharded_cache.find c "a");
  let st = Sharded_cache.stats c in
  Alcotest.(check int) "eviction counted" 1 st.Sharded_cache.evictions

let test_sharded_counters_and_bytes () =
  let c = Sharded_cache.create ~shards:4 ~weight:String.length ~capacity:64 () in
  Sharded_cache.add c "k1" "xxxx";
  Sharded_cache.add c "k2" "yy";
  Alcotest.(check int) "bytes sum weights" 6 (Sharded_cache.bytes c);
  Sharded_cache.add c "k1" "z";
  Alcotest.(check int) "overwrite adjusts bytes" 3 (Sharded_cache.bytes c);
  ignore (Sharded_cache.find c "k1");
  ignore (Sharded_cache.find c "k2");
  ignore (Sharded_cache.find c "absent");
  let st = Sharded_cache.stats c in
  Alcotest.(check int) "hits" 2 st.Sharded_cache.hits;
  Alcotest.(check int) "misses" 1 st.Sharded_cache.misses;
  (* a corrupt hit is reclassified: the served count excludes it *)
  ignore (Sharded_cache.find c "k2");
  Sharded_cache.evict_corrupt c "k2";
  let st = Sharded_cache.stats c in
  Alcotest.(check int) "corrupt hit becomes a miss" 2 st.Sharded_cache.misses;
  Alcotest.(check int) "hits only count served" 2 st.Sharded_cache.hits;
  Alcotest.(check int) "corrupt counted" 1 st.Sharded_cache.corrupt;
  Alcotest.(check int) "evicted entry gone" 1 (Sharded_cache.length c);
  Alcotest.(check int) "bytes drop with eviction" 1 (Sharded_cache.bytes c);
  Sharded_cache.note_corrupt c "load-reject";
  Alcotest.(check int) "note_corrupt adds without eviction" 2
    (Sharded_cache.stats c).Sharded_cache.corrupt

(* Hammer one cache from several domains; because every counter mutates
   under its shard lock, the merged totals must come out exact. *)
let test_sharded_concurrent_exact () =
  let c = Sharded_cache.create ~shards:8 ~capacity:64 () in
  for i = 0 to 31 do
    Sharded_cache.add c (string_of_int i) i
  done;
  let domains = 4 and per_domain = 1000 in
  let pool = Pool.create ~domains in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () ->
      Pool.for_range pool ~chunks:domains ~lo:0 ~hi:(domains * per_domain) (fun lo hi ->
          for i = lo to hi - 1 do
            (* present on even draws, absent on odd: half hits, half misses *)
            if i mod 2 = 0 then ignore (Sharded_cache.find c (string_of_int (i mod 32)))
            else ignore (Sharded_cache.find c (Printf.sprintf "absent-%d" i))
          done));
  let st = Sharded_cache.stats c in
  Alcotest.(check int) "hits exact" (domains * per_domain / 2) st.Sharded_cache.hits;
  Alcotest.(check int) "misses exact" (domains * per_domain / 2) st.Sharded_cache.misses

let suite =
  [
    Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
    Alcotest.test_case "prng bounds" `Quick test_prng_bounds;
    Alcotest.test_case "prng split" `Quick test_prng_split_independent;
    Alcotest.test_case "prng split_n statistics" `Quick test_prng_split_n_statistics;
    Alcotest.test_case "prng split_n edge cases" `Quick test_prng_split_n_edge_cases;
    Alcotest.test_case "prng shuffle permutes" `Quick test_prng_shuffle_permutes;
    Alcotest.test_case "prng gaussian moments" `Quick test_prng_gaussian_moments;
    Alcotest.test_case "pqueue basic" `Quick test_pqueue_basic;
    Alcotest.test_case "pqueue fifo ties" `Quick test_pqueue_fifo_ties;
    QCheck_alcotest.to_alcotest prop_pqueue_sorted;
    Alcotest.test_case "bitset basic" `Quick test_bitset_basic;
    Alcotest.test_case "bitset copy" `Quick test_bitset_copy_independent;
    QCheck_alcotest.to_alcotest prop_bitset_add_mem;
    Alcotest.test_case "union find" `Quick test_union_find;
    Alcotest.test_case "stats" `Quick test_stats;
    Alcotest.test_case "tablefmt" `Quick test_tablefmt;
    Alcotest.test_case "lru capacity zero" `Quick test_lru_capacity_zero;
    Alcotest.test_case "lru capacity one" `Quick test_lru_capacity_one;
    Alcotest.test_case "lru eviction order" `Quick test_lru_eviction_order;
    Alcotest.test_case "lru overwrite refreshes recency" `Quick test_lru_overwrite_refreshes;
    Alcotest.test_case "sharded cache clamps to capacity" `Quick test_sharded_clamps_to_capacity;
    Alcotest.test_case "sharded cache counters and bytes" `Quick test_sharded_counters_and_bytes;
    Alcotest.test_case "sharded cache exact under domains" `Quick test_sharded_concurrent_exact;
  ]
