(* Tests for the observability layer: fake-clock spans, counter and
   histogram semantics, the disabled sink being a no-op, JSON round-trip,
   and the deterministic A* time-budget cut. *)

module Obs = Qcr_obs.Obs
module Clock = Qcr_obs.Clock
module Json = Qcr_obs.Json
module Trace_json = Qcr_obs.Trace_json
module Summary = Qcr_obs.Summary
module Graph = Qcr_graph.Graph
module Generate = Qcr_graph.Generate
module Mapping = Qcr_circuit.Mapping
module Astar = Qcr_solver.Astar

(* The sink is global state shared with every other suite in this binary;
   always leave it disabled and empty. *)
let with_sink ?clock f =
  Obs.enable ?clock ();
  Obs.reset ();
  Fun.protect f ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ();
      Obs.set_clock Clock.wall)

(* ---------- clocks ---------- *)

let test_fake_clock () =
  let fk, clock = Clock.fake ~start:5.0 () in
  Alcotest.(check (float 0.0)) "start" 5.0 (Clock.now clock);
  Clock.advance fk 2.5;
  Alcotest.(check (float 0.0)) "advance" 7.5 (Clock.now clock);
  Clock.set fk 10.0;
  Alcotest.(check (float 0.0)) "set" 10.0 (Clock.now clock);
  Alcotest.check_raises "negative advance" (Invalid_argument "Clock.advance: negative delta")
    (fun () -> Clock.advance fk (-1.0));
  Alcotest.check_raises "backwards set" (Invalid_argument "Clock.set: moving backwards")
    (fun () -> Clock.set fk 9.0)

let test_fake_clock_auto_advance () =
  let _, clock = Clock.fake ~auto_advance:1.0 () in
  Alcotest.(check (float 0.0)) "first reading" 0.0 (Clock.now clock);
  Alcotest.(check (float 0.0)) "second reading" 1.0 (Clock.now clock);
  Alcotest.(check (float 0.0)) "third reading" 2.0 (Clock.now clock)

let test_builtin_clocks () =
  Alcotest.(check string) "wall name" "wall" (Clock.name Clock.wall);
  Alcotest.(check string) "cpu name" "cpu" (Clock.name Clock.cpu);
  let a = Clock.now Clock.wall in
  let b = Clock.now Clock.wall in
  Alcotest.(check bool) "wall monotone" true (b >= a)

(* ---------- spans under a fake clock ---------- *)

let test_span_nesting () =
  let _, clock = Clock.fake ~auto_advance:1.0 () in
  with_sink ~clock (fun () ->
      let r =
        Obs.with_span "outer" (fun () ->
            Obs.with_span ~cat:"inner-cat" ~args:[ ("k", "v") ] "inner" (fun () -> 42))
      in
      Alcotest.(check int) "return value" 42 r;
      match Obs.spans () with
      | [ outer; inner ] ->
          Alcotest.(check string) "outer name" "outer" outer.Obs.span_name;
          Alcotest.(check int) "outer depth" 0 outer.Obs.span_depth;
          (* readings: outer start 0, inner start 1, inner end 2, outer
             end 3 — each reading auto-advances by 1.0 *)
          Alcotest.(check (float 0.0)) "outer start" 0.0 outer.Obs.span_start;
          Alcotest.(check (float 0.0)) "outer dur" 3.0 outer.Obs.span_dur;
          Alcotest.(check string) "inner name" "inner" inner.Obs.span_name;
          Alcotest.(check int) "inner depth" 1 inner.Obs.span_depth;
          Alcotest.(check (float 0.0)) "inner start" 1.0 inner.Obs.span_start;
          Alcotest.(check (float 0.0)) "inner dur" 1.0 inner.Obs.span_dur;
          Alcotest.(check string) "inner cat" "inner-cat" inner.Obs.span_cat;
          Alcotest.(check (list (pair string string))) "inner args" [ ("k", "v") ]
            inner.Obs.span_args
      | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans))

let test_span_ordering () =
  let _, clock = Clock.fake ~auto_advance:1.0 () in
  with_sink ~clock (fun () ->
      Obs.with_span "a" (fun () -> ());
      Obs.with_span "b" (fun () -> Obs.with_span "c" (fun () -> ()));
      let names = List.map (fun sp -> sp.Obs.span_name) (Obs.spans ()) in
      (* chronological by start, not by completion order (c ends before b) *)
      Alcotest.(check (list string)) "start order" [ "a"; "b"; "c" ] names)

let test_span_survives_raise () =
  let _, clock = Clock.fake ~auto_advance:1.0 () in
  with_sink ~clock (fun () ->
      (try Obs.with_span "doomed" (fun () -> raise Exit) with Exit -> ());
      match Obs.spans () with
      | [ sp ] ->
          Alcotest.(check string) "name" "doomed" sp.Obs.span_name;
          Alcotest.(check int) "depth unwound" 0 sp.Obs.span_depth;
          (* a later span must not inherit the aborted nesting level *)
          Obs.with_span "after" (fun () -> ());
          let after = List.nth (Obs.spans ()) 1 in
          Alcotest.(check int) "subsequent depth" 0 after.Obs.span_depth
      | spans -> Alcotest.failf "expected 1 span, got %d" (List.length spans))

(* ---------- counters ---------- *)

let test_counters () =
  let c = Obs.counter "test.counter" in
  Alcotest.(check string) "name" "test.counter" (Obs.Counter.name c);
  Alcotest.(check bool) "interned" true (c == Obs.counter "test.counter");
  with_sink (fun () ->
      Obs.incr c;
      Obs.add c 10;
      Alcotest.(check int) "value" 11 (Obs.Counter.value c);
      let snap = Obs.snapshot () in
      Alcotest.(check bool) "in snapshot" true
        (List.mem ("test.counter", 11) snap.Obs.snap_counters))

let test_disabled_sink_is_noop () =
  Obs.disable ();
  Obs.reset ();
  let c = Obs.counter "test.noop" in
  let h = Obs.histogram "test.noop_h" in
  Obs.incr c;
  Obs.add c 100;
  Obs.observe h 3.0;
  let r = Obs.with_span "invisible" (fun () -> 7) in
  Alcotest.(check int) "with_span passes through" 7 r;
  Alcotest.(check int) "counter untouched" 0 (Obs.Counter.value c);
  Alcotest.(check int) "histogram untouched" 0 (Obs.Histogram.summary h).Obs.Histogram.count;
  Alcotest.(check int) "no spans" 0 (List.length (Obs.spans ()));
  let snap = Obs.snapshot () in
  Alcotest.(check int) "empty snapshot counters" 0 (List.length snap.Obs.snap_counters);
  Alcotest.(check int) "empty snapshot histograms" 0 (List.length snap.Obs.snap_histograms)

let test_reset_keeps_handles () =
  let c = Obs.counter "test.reset" in
  with_sink (fun () ->
      Obs.add c 5;
      Obs.reset ();
      Alcotest.(check int) "zeroed" 0 (Obs.Counter.value c);
      Obs.incr c;
      Alcotest.(check int) "handle still live" 1 (Obs.Counter.value c))

(* ---------- histograms ---------- *)

let test_histogram_buckets () =
  Alcotest.(check int) "non-positive" 0 (Obs.Histogram.bucket_of (-3.0));
  Alcotest.(check int) "zero" 0 (Obs.Histogram.bucket_of 0.0);
  (* 1.0 = 2^0 lands in the bucket for [2^0, 2^1) *)
  let b1 = Obs.Histogram.bucket_of 1.0 in
  Alcotest.(check int) "2.0 one bucket up" (b1 + 1) (Obs.Histogram.bucket_of 2.0);
  Alcotest.(check int) "1.5 same bucket as 1.0" b1 (Obs.Histogram.bucket_of 1.5);
  Alcotest.(check int) "0.5 one bucket down" (b1 - 1) (Obs.Histogram.bucket_of 0.5);
  Alcotest.(check bool) "huge clamps" true
    (Obs.Histogram.bucket_of 1e300 < Obs.Histogram.bucket_count)

let summary_of values =
  let h = Obs.histogram "test.merge_h" in
  with_sink (fun () ->
      List.iter (Obs.observe h) values;
      Obs.Histogram.summary h)

let check_summary_eq what (a : Obs.Histogram.summary) (b : Obs.Histogram.summary) =
  Alcotest.(check int) (what ^ " count") a.Obs.Histogram.count b.Obs.Histogram.count;
  Alcotest.(check (float 1e-9)) (what ^ " sum") a.Obs.Histogram.sum b.Obs.Histogram.sum;
  Alcotest.(check (float 0.0)) (what ^ " min") a.Obs.Histogram.min b.Obs.Histogram.min;
  Alcotest.(check (float 0.0)) (what ^ " max") a.Obs.Histogram.max b.Obs.Histogram.max;
  Alcotest.(check (array int)) (what ^ " buckets") a.Obs.Histogram.buckets b.Obs.Histogram.buckets

let test_histogram_merge () =
  let open Obs.Histogram in
  let s1 = summary_of [ 1.0; 2.0; 4.0 ] in
  let s2 = summary_of [ 0.5; 8.0 ] in
  let s3 = summary_of [ 16.0 ] in
  let all = summary_of [ 1.0; 2.0; 4.0; 0.5; 8.0; 16.0 ] in
  (* merging partitions reproduces observing everything at once *)
  check_summary_eq "partition" (merge s1 (merge s2 s3)) all;
  (* associative, commutative, identity *)
  check_summary_eq "assoc" (merge (merge s1 s2) s3) (merge s1 (merge s2 s3));
  check_summary_eq "comm" (merge s1 s2) (merge s2 s1);
  check_summary_eq "left id" (merge empty_summary s1) s1;
  check_summary_eq "right id" (merge s1 empty_summary) s1;
  Alcotest.(check (float 1e-9)) "mean" 2.0 (mean (summary_of [ 1.0; 2.0; 3.0 ]));
  Alcotest.(check (float 0.0)) "empty mean" 0.0 (mean empty_summary)

let test_merge_snapshots () =
  let snap counters =
    { Obs.snap_counters = counters; snap_histograms = [] }
  in
  let merged = Obs.merge_snapshots (snap [ ("a", 1); ("b", 2) ]) (snap [ ("b", 3); ("c", 4) ]) in
  Alcotest.(check (list (pair string int))) "counters add, sorted"
    [ ("a", 1); ("b", 5); ("c", 4) ]
    merged.Obs.snap_counters

(* ---------- JSON ---------- *)

let json_testable = Alcotest.testable (fun fmt v -> Format.pp_print_string fmt (Json.to_string v)) Json.equal

let test_json_basics () =
  let check_rt what v =
    match Json.of_string (Json.to_string v) with
    | Ok v' -> Alcotest.check json_testable what v v'
    | Error e -> Alcotest.failf "%s: parse error: %s" what e
  in
  check_rt "null" Json.Null;
  check_rt "bools" (Json.Arr [ Json.Bool true; Json.Bool false ]);
  check_rt "numbers"
    (Json.Arr [ Json.Num 0.0; Json.Num (-17.0); Json.Num 3.5; Json.Num 1e-3; Json.Num 1e15 ]);
  check_rt "strings"
    (Json.Arr [ Json.Str ""; Json.Str "plain"; Json.Str "esc \" \\ \n \t \x01"; Json.Str "αβ → ✓" ]);
  check_rt "nested"
    (Json.Obj [ ("a", Json.Arr [ Json.Obj [ ("b", Json.Null) ] ]); ("c", Json.Str "d") ])

let test_json_parser_rejects () =
  let rejects what s =
    match Json.of_string s with
    | Ok _ -> Alcotest.failf "%s: expected parse error for %S" what s
    | Error _ -> ()
  in
  rejects "unterminated object" "{";
  rejects "trailing comma" "[1,]";
  rejects "bad literal" "tru";
  rejects "trailing garbage" "1 x";
  rejects "unterminated string" "\"abc";
  rejects "lone minus" "-";
  rejects "empty input" "";
  Alcotest.(check bool) "escapes parse" true
    (Json.of_string "\"\\u0041\\u00e9\\ud834\\udd1e\"" = Ok (Json.Str "A\xc3\xa9\xf0\x9d\x84\x9e"))

let test_json_member () =
  let v = Json.Obj [ ("a", Json.Num 1.0); ("b", Json.Null) ] in
  Alcotest.(check bool) "present" true (Json.member "a" v = Some (Json.Num 1.0));
  Alcotest.(check bool) "absent" true (Json.member "z" v = None);
  Alcotest.(check bool) "non-object" true (Json.member "a" Json.Null = None)

let gen_json =
  let open QCheck.Gen in
  let printable = map Char.chr (int_range 32 126) in
  let gen_str = string_size ~gen:printable (int_bound 8) in
  let gen_num =
    map (fun (a, b) -> float_of_int a /. float_of_int (1 lsl b)) (pair (int_range (-10000) 10000) (int_bound 6))
  in
  let leaf =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun f -> Json.Num f) gen_num;
        map (fun s -> Json.Str s) gen_str;
      ]
  in
  sized @@ fix (fun self n ->
      if n <= 0 then leaf
      else
        frequency
          [
            (2, leaf);
            (1, map (fun xs -> Json.Arr xs) (list_size (int_bound 4) (self (n / 2))));
            ( 1,
              map (fun kvs -> Json.Obj kvs)
                (list_size (int_bound 4) (pair gen_str (self (n / 2)))) );
          ])

let prop_json_roundtrip =
  QCheck.Test.make ~name:"JSON emit/parse round-trips" ~count:200
    (QCheck.make ~print:Json.to_string gen_json)
    (fun v ->
      match Json.of_string (Json.to_string v) with
      | Ok v' -> Json.equal v v'
      | Error _ -> false)

(* ---------- Chrome trace export ---------- *)

let test_trace_json () =
  let _, clock = Clock.fake ~auto_advance:0.5 () in
  with_sink ~clock (fun () ->
      Obs.with_span "phase.a" (fun () -> Obs.with_span "phase.b" (fun () -> ()));
      Obs.add (Obs.counter "test.trace_counter") 3;
      let trace = Trace_json.json_of ~process_name:"qcr-test" ~spans:(Obs.spans ())
          ~snapshot:(Obs.snapshot ()) ()
      in
      (* the serialized form must survive our own strict parser *)
      (match Json.of_string (Json.to_string trace) with
      | Ok v -> Alcotest.check json_testable "round-trip" trace v
      | Error e -> Alcotest.failf "trace JSON does not reparse: %s" e);
      let events =
        match Json.member "traceEvents" trace with
        | Some (Json.Arr events) -> events
        | _ -> Alcotest.fail "missing traceEvents array"
      in
      let phase ev = match Json.member "ph" ev with Some (Json.Str p) -> p | _ -> "?" in
      let name ev = match Json.member "name" ev with Some (Json.Str n) -> n | _ -> "?" in
      Alcotest.(check (list string)) "event kinds" [ "M"; "X"; "X"; "C" ] (List.map phase events);
      Alcotest.(check bool) "span names present" true
        (List.exists (fun ev -> phase ev = "X" && name ev = "phase.a") events
        && List.exists (fun ev -> phase ev = "X" && name ev = "phase.b") events);
      (* timestamps are microseconds relative to the earliest span: the
         outer span starts at 0 and covers three 0.5 s readings *)
      let outer = List.find (fun ev -> name ev = "phase.a") events in
      Alcotest.(check bool) "outer ts" true (Json.member "ts" outer = Some (Json.Num 0.0));
      Alcotest.(check bool) "outer dur" true (Json.member "dur" outer = Some (Json.Num 1_500_000.0)))

let test_trace_write_file () =
  let _, clock = Clock.fake ~auto_advance:1.0 () in
  with_sink ~clock (fun () ->
      Obs.with_span "solo" (fun () -> ());
      let path = Filename.temp_file "qcr_trace" ".json" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Trace_json.write_file path;
          let ic = open_in_bin path in
          let contents = really_input_string ic (in_channel_length ic) in
          close_in ic;
          match Json.of_string (String.trim contents) with
          | Ok v ->
              Alcotest.(check bool) "has traceEvents" true (Json.member "traceEvents" v <> None)
          | Error e -> Alcotest.failf "written trace invalid: %s" e))

let test_summary_render () =
  let _, clock = Clock.fake ~auto_advance:1.0 () in
  with_sink ~clock (fun () ->
      Obs.with_span "phase.render" (fun () -> ());
      Obs.add (Obs.counter "test.render_counter") 2;
      Obs.observe (Obs.histogram "test.render_h") 4.0;
      let text = Summary.render () in
      let mem needle =
        let nl = String.length needle and tl = String.length text in
        let rec scan i = i + nl <= tl && (String.sub text i nl = needle || scan (i + 1)) in
        scan 0
      in
      Alcotest.(check bool) "span row" true (mem "phase.render");
      Alcotest.(check bool) "counter row" true (mem "test.render_counter");
      Alcotest.(check bool) "histogram line" true (mem "histogram test.render_h"));
  Alcotest.(check string) "empty sink" "(no telemetry recorded)\n" (Summary.render ())

let test_summary_empty_histogram_bounds () =
  (* an empty histogram carries min = infinity / max = neg_infinity;
     the report must print "-" for both, never the raw infinities *)
  let text =
    Summary.render_of ~spans:[]
      ~snapshot:
        { Obs.snap_counters = []; snap_histograms = [ ("empty.h", Obs.Histogram.empty_summary) ] }
  in
  let mem needle =
    let nl = String.length needle and tl = String.length text in
    let rec scan i = i + nl <= tl && (String.sub text i nl = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "bounds render as dashes" true (mem "min=- max=-");
  Alcotest.(check bool) "no inf leaks" false (mem "inf")

let test_clear_spans () =
  with_sink (fun () ->
      let c = Obs.counter "test.clear_spans" in
      Obs.with_span "short-lived" (fun () -> Obs.incr c);
      Obs.clear_spans ();
      Alcotest.(check int) "spans dropped" 0 (List.length (Obs.spans ()));
      Alcotest.(check int) "counters survive" 1 (Obs.Counter.value c))

(* ---------- deterministic A* budget cut ---------- *)

let test_astar_budget_cut () =
  (* every fake-clock reading advances 1.0 s past a 0.5 s budget, so the
     very first budget check (at expansion 256) cuts the search — a
     deterministic version of "ran out of time" *)
  let fk, clock = Clock.fake ~auto_advance:1.0 () in
  ignore fk;
  let n = 6 in
  let problem = Graph.complete n in
  let coupling = Generate.path n in
  let init = Mapping.identity ~logical:n ~physical:n in
  with_sink ~clock (fun () ->
      let budget_cut = Obs.counter "astar.budget_cut" in
      let r = Astar.solve ~time_budget:0.5 ~problem ~coupling ~init () in
      Alcotest.(check bool) "cut search returns None" true (r = None);
      Alcotest.(check int) "budget_cut counted" 1 (Obs.Counter.value budget_cut);
      (* the expansion counter reflects the sampling interval exactly *)
      let snap = Obs.snapshot () in
      Alcotest.(check bool) "expanded capped at sampling interval" true
        (List.assoc_opt "astar.expanded" snap.Obs.snap_counters = Some 256));
  (* the budget flows through the clock even with the sink disabled *)
  let _, clock2 = Clock.fake ~auto_advance:1.0 () in
  let r = Astar.solve ~clock:clock2 ~time_budget:0.5 ~problem ~coupling ~init () in
  Alcotest.(check bool) "clock param works without sink" true (r = None)

let test_astar_counters () =
  let problem = Graph.complete 4 in
  let coupling = Generate.path 4 in
  let init = Mapping.identity ~logical:4 ~physical:4 in
  with_sink (fun () ->
      (match Astar.solve ~problem ~coupling ~init () with
      | Some _ -> ()
      | None -> Alcotest.fail "line4-clique should solve");
      let snap = Obs.snapshot () in
      let get name = List.assoc_opt name snap.Obs.snap_counters in
      Alcotest.(check bool) "solves" true (get "astar.solves" = Some 1);
      Alcotest.(check bool) "expanded > 0" true (match get "astar.expanded" with Some v -> v > 0 | None -> false);
      Alcotest.(check bool) "heuristic evals > 0" true
        (match get "astar.heuristic_evals" with Some v -> v > 0 | None -> false);
      Alcotest.(check bool) "no budget cut" true (get "astar.budget_cut" = None);
      Alcotest.(check bool) "expansion histogram" true
        (match List.assoc_opt "astar.expanded_per_solve" snap.Obs.snap_histograms with
        | Some s -> s.Obs.Histogram.count = 1
        | None -> false))

(* ---------- domain safety ---------- *)

let test_parallel_counter_increments () =
  with_sink (fun () ->
      let c = Obs.counter "par.increments" in
      let h = Obs.histogram "par.observations" in
      let pool = Qcr_par.Pool.create ~domains:4 in
      Fun.protect
        ~finally:(fun () -> Qcr_par.Pool.shutdown pool)
        (fun () ->
          Qcr_par.Pool.parallel_for pool ~lo:0 ~hi:40_000 (fun i ->
              Obs.incr c;
              if i mod 100 = 0 then Obs.observe h 1.0));
      Alcotest.(check int) "no lost counter updates" 40_000 (Obs.Counter.value c);
      let s = Obs.Histogram.summary h in
      Alcotest.(check int) "no lost observations" 400 s.Obs.Histogram.count;
      Alcotest.(check (float 1e-9)) "histogram sum" 400.0 s.Obs.Histogram.sum)

let test_parallel_spans_merge () =
  with_sink (fun () ->
      let pool = Qcr_par.Pool.create ~domains:4 in
      Fun.protect
        ~finally:(fun () -> Qcr_par.Pool.shutdown pool)
        (fun () ->
          Obs.with_span ~cat:"test" "root" (fun () ->
              Qcr_par.Pool.parallel_for pool ~chunks:16 ~lo:0 ~hi:16 (fun i ->
                  Obs.with_span ~cat:"test"
                    (Printf.sprintf "worker-%d" i)
                    (fun () -> ignore (Sys.opaque_identity (i * i))))));
      let spans = Obs.spans () in
      let names = List.map (fun s -> s.Obs.span_name) spans in
      Alcotest.(check int) "all spans captured" 17 (List.length spans);
      Alcotest.(check bool) "root captured" true (List.mem "root" names);
      for i = 0 to 15 do
        Alcotest.(check bool)
          (Printf.sprintf "worker-%d captured" i)
          true
          (List.mem (Printf.sprintf "worker-%d" i) names)
      done;
      (* Spans on worker domains start their own depth stack at 0; the
         trace stays well-formed per domain. *)
      List.iter
        (fun s -> Alcotest.(check bool) "depth >= 0" true (s.Obs.span_depth >= 0))
        spans)

let test_sink_control_guarded_in_parallel () =
  (* Sink control belongs to the driver domain: flipping the sink (or the
     clock) from inside a parallel region would race every worker's
     fast-path check.  Each control entry point must raise a clear
     Invalid_argument when called from a pool task. *)
  with_sink (fun () ->
      let pool = Qcr_par.Pool.create ~domains:2 in
      Fun.protect
        ~finally:(fun () -> Qcr_par.Pool.shutdown pool)
        (fun () ->
          let raised = Atomic.make 0 in
          let message = Atomic.make "" in
          Qcr_par.Pool.parallel_for pool ~lo:0 ~hi:4 (fun _ ->
              List.iter
                (fun control ->
                  try control ()
                  with Invalid_argument msg ->
                    Atomic.incr raised;
                    Atomic.set message msg)
                [
                  (fun () -> Obs.enable ());
                  (fun () -> Obs.disable ());
                  (fun () -> Obs.reset ());
                  (fun () -> Obs.clear_spans ());
                  (fun () -> Obs.set_clock Clock.wall);
                ]);
          Alcotest.(check int) "every control call raised" 20 (Atomic.get raised);
          Alcotest.(check string) "clear diagnostic"
            "Qcr_obs.Obs.set_clock: sink control inside a parallel region"
            (Atomic.get message));
      (* back on the driver domain, control works again *)
      Obs.reset ();
      Alcotest.(check bool) "driver control unaffected" true (Obs.enabled ()))

let suite =
  [
    Alcotest.test_case "fake clock" `Quick test_fake_clock;
    Alcotest.test_case "fake clock auto-advance" `Quick test_fake_clock_auto_advance;
    Alcotest.test_case "builtin clocks" `Quick test_builtin_clocks;
    Alcotest.test_case "span nesting" `Quick test_span_nesting;
    Alcotest.test_case "span ordering" `Quick test_span_ordering;
    Alcotest.test_case "span survives raise" `Quick test_span_survives_raise;
    Alcotest.test_case "counters" `Quick test_counters;
    Alcotest.test_case "disabled sink is a no-op" `Quick test_disabled_sink_is_noop;
    Alcotest.test_case "reset keeps handles" `Quick test_reset_keeps_handles;
    Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
    Alcotest.test_case "histogram merge" `Quick test_histogram_merge;
    Alcotest.test_case "merge snapshots" `Quick test_merge_snapshots;
    Alcotest.test_case "json basics" `Quick test_json_basics;
    Alcotest.test_case "json parser rejects" `Quick test_json_parser_rejects;
    Alcotest.test_case "json member" `Quick test_json_member;
    QCheck_alcotest.to_alcotest prop_json_roundtrip;
    Alcotest.test_case "chrome trace export" `Quick test_trace_json;
    Alcotest.test_case "trace write_file" `Quick test_trace_write_file;
    Alcotest.test_case "summary render" `Quick test_summary_render;
    Alcotest.test_case "summary renders empty bounds as dashes" `Quick
      test_summary_empty_histogram_bounds;
    Alcotest.test_case "clear_spans keeps metrics" `Quick test_clear_spans;
    Alcotest.test_case "astar budget cut (fake clock)" `Quick test_astar_budget_cut;
    Alcotest.test_case "astar counters" `Quick test_astar_counters;
    Alcotest.test_case "parallel counter increments merge" `Quick
      test_parallel_counter_increments;
    Alcotest.test_case "parallel spans merge at flush" `Quick test_parallel_spans_merge;
    Alcotest.test_case "sink control raises inside parallel regions" `Quick
      test_sink_control_guarded_in_parallel;
  ]
